(* Hardware model tests: Toeplitz/RSS, links, switch, NIC, cache and
   PCIe models. *)

module Mbuf = Ixmem.Mbuf
open Ixhw

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ip n = Ixnet.Ip_addr.of_octets 10 0 0 n

(* ---------------- Toeplitz ---------------- *)

let test_toeplitz_known_vector () =
  (* Microsoft RSS verification suite: 66.9.149.187:2794 ->
     161.142.100.80:1766 hashes to 0x51ccc178 with the default key. *)
  let h =
    Toeplitz.hash_tuple
      ~src_ip:(Ixnet.Ip_addr.of_octets 66 9 149 187)
      ~dst_ip:(Ixnet.Ip_addr.of_octets 161 142 100 80)
      ~src_port:2794 ~dst_port:1766 ()
  in
  check_int "MS verification vector" 0x51ccc178 h

let test_toeplitz_known_vector2 () =
  (* 199.92.111.2:14230 -> 65.69.140.83:4739 -> 0xc626b0ea *)
  let h =
    Toeplitz.hash_tuple
      ~src_ip:(Ixnet.Ip_addr.of_octets 199 92 111 2)
      ~dst_ip:(Ixnet.Ip_addr.of_octets 65 69 140 83)
      ~src_port:14230 ~dst_port:4739 ()
  in
  check_int "MS verification vector 2" 0xc626b0ea h

let test_toeplitz_deterministic () =
  let h () =
    Toeplitz.hash_tuple ~src_ip:(ip 1) ~dst_ip:(ip 2) ~src_port:123 ~dst_port:80 ()
  in
  check_int "stable" (h ()) (h ())

let test_toeplitz_spreads () =
  (* Different source ports should spread over queues reasonably. *)
  let buckets = Array.make 8 0 in
  for port = 2000 to 2999 do
    let h =
      Toeplitz.hash_tuple ~src_ip:(ip 1) ~dst_ip:(ip 2) ~src_port:port ~dst_port:80 ()
    in
    buckets.(h land 7) <- buckets.(h land 7) + 1
  done;
  Array.iter (fun n -> check_bool "no empty bucket" true (n > 50)) buckets

let prop_toeplitz_symmetric_key =
  QCheck.Test.make ~name:"symmetric key gives direction-independent hash" ~count:200
    QCheck.(quad (int_bound 255) (int_bound 255) (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (a, b, pa, pb) ->
      let lut = Toeplitz.lut_of_key Toeplitz.symmetric_key in
      let h1 =
        Toeplitz.hash_tuple ~lut ~src_ip:(ip a) ~dst_ip:(ip b) ~src_port:pa ~dst_port:pb ()
      in
      let h2 =
        Toeplitz.hash_tuple ~lut ~src_ip:(ip b) ~dst_ip:(ip a) ~src_port:pb ~dst_port:pa ()
      in
      h1 = h2)

(* ---------------- Frame helpers ---------------- *)

let make_tcp_frame ?(src_ip = ip 1) ?(dst_ip = ip 2) ?(src_port = 4000)
    ?(dst_port = 80) ?(dst_mac = Ixnet.Mac_addr.of_host_id 2) ?(payload = "yo") () =
  let m = Mbuf.create () in
  Mbuf.append m payload;
  let seg =
    {
      Ixnet.Tcp_segment.src_port;
      dst_port;
      seq = 1;
      ack = 1;
      syn = false;
      ack_flag = true;
      fin = false;
      rst = false;
      psh = false;
      ece = false;
      cwr = false;
      window = 100;
      mss = None;
      wscale = None;
      sack = None;
      payload_off = 0;
      payload_len = 0;
    }
  in
  Ixnet.Tcp_segment.prepend m ~src:src_ip ~dst:dst_ip seg;
  Ixnet.Ipv4_packet.prepend m
    {
      Ixnet.Ipv4_packet.src = src_ip;
      dst = dst_ip;
      protocol = Ixnet.Ipv4_packet.Tcp;
      ttl = 64;
      ecn = 0;
      payload_len = m.Mbuf.len;
    };
  Ixnet.Ethernet.prepend m
    {
      Ixnet.Ethernet.dst = dst_mac;
      src = Ixnet.Mac_addr.of_host_id 1;
      ethertype = Ixnet.Ethernet.Ipv4;
    };
  let frame = Frame.of_mbuf m in
  Mbuf.decref m;
  frame

let test_frame_parsing () =
  let frame = make_tcp_frame () in
  check_int "dst mac" (Ixnet.Mac_addr.of_host_id 2) (Frame.dst_mac frame);
  check_int "src mac" (Ixnet.Mac_addr.of_host_id 1) (Frame.src_mac frame);
  match Frame.rss_tuple frame with
  | None -> Alcotest.fail "expected an RSS tuple"
  | Some (src_ip, dst_ip, src_port, dst_port) ->
      check_int "src ip" (ip 1) src_ip;
      check_int "dst ip" (ip 2) dst_ip;
      check_int "src port" 4000 src_port;
      check_int "dst port" 80 dst_port

(* ---------------- Link ---------------- *)

let test_link_serialization_rate () =
  let sim = Engine.Sim.create () in
  let arrivals = ref [] in
  let link =
    Link.create sim ~gbps:10. ~propagation_ns:500
      ~deliver:(fun _ -> arrivals := Engine.Sim.now sim :: !arrivals)
      ()
  in
  let frame = make_tcp_frame ~payload:(String.make 64 'x') () in
  (* 64B payload message = 142B on the wire = 113.6 -> 114 ns at 10G. *)
  Link.send link frame;
  Link.send link frame;
  Engine.Sim.run sim;
  match List.rev !arrivals with
  | [ t1; t2 ] ->
      check_int "first arrival" 614 t1;
      check_int "second queues behind first" 728 t2
  | _ -> Alcotest.fail "expected two arrivals"

let test_link_utilization () =
  let sim = Engine.Sim.create () in
  let link = Link.create sim ~gbps:10. ~propagation_ns:0 ~deliver:ignore () in
  let frame = make_tcp_frame ~payload:(String.make 1000 'x') () in
  for _ = 1 to 10 do
    Link.send link frame
  done;
  Engine.Sim.run sim;
  check_int "frames counted" 10 (Link.frames_sent link);
  check_bool "utilization accounted" true (Link.utilization link ~over:(Engine.Sim.now sim) > 0.9)

(* ---------------- Switch ---------------- *)

let test_switch_forwards_by_mac () =
  let sim = Engine.Sim.create () in
  let got = ref 0 in
  let sw = Switch.create sim ~ports:3 () in
  let mk_port i deliver =
    let link = Link.create sim ~gbps:10. ~propagation_ns:100 ~deliver () in
    Switch.attach sw ~port:i ~mac:(Ixnet.Mac_addr.of_host_id (i + 1)) ~out:link
  in
  mk_port 0 ignore;
  mk_port 1 (fun _ -> incr got);
  mk_port 2 (fun _ -> Alcotest.fail "wrong port");
  Switch.input sw ~ingress_port:0 (make_tcp_frame ~dst_mac:(Ixnet.Mac_addr.of_host_id 2) ());
  Engine.Sim.run sim;
  check_int "delivered to port 1 only" 1 !got;
  check_int "forwarded count" 1 (Switch.forwarded sw)

let test_switch_floods_broadcast () =
  let sim = Engine.Sim.create () in
  let got = ref 0 in
  let sw = Switch.create sim ~ports:4 () in
  for i = 0 to 3 do
    let link = Link.create sim ~gbps:10. ~propagation_ns:0 ~deliver:(fun _ -> incr got) () in
    Switch.attach sw ~port:i ~mac:(Ixnet.Mac_addr.of_host_id (i + 1)) ~out:link
  done;
  Switch.input sw ~ingress_port:0 (make_tcp_frame ~dst_mac:Ixnet.Mac_addr.broadcast ());
  Engine.Sim.run sim;
  check_int "flooded to all but ingress" 3 !got

let test_switch_bond_spreads_flows () =
  let sim = Engine.Sim.create () in
  let counts = Array.make 4 0 in
  let sw = Switch.create sim ~ports:5 () in
  (* Ports 0-3 are a bond toward the "server", all with distinct MACs
     but the frames target port 0's MAC. *)
  for i = 0 to 3 do
    let link =
      Link.create sim ~gbps:10. ~propagation_ns:0
        ~deliver:(fun _ -> counts.(i) <- counts.(i) + 1)
        ()
    in
    Switch.attach sw ~port:i ~mac:(Ixnet.Mac_addr.of_host_id (100 + i)) ~out:link
  done;
  Switch.attach sw ~port:4 ~mac:(Ixnet.Mac_addr.of_host_id 1)
    ~out:(Link.create sim ~gbps:10. ~propagation_ns:0 ~deliver:ignore ());
  Switch.bond sw ~ports:[ 0; 1; 2; 3 ];
  for port = 1000 to 1999 do
    Switch.input sw ~ingress_port:4
      (make_tcp_frame ~src_port:port ~dst_mac:(Ixnet.Mac_addr.of_host_id 100) ())
  done;
  Engine.Sim.run sim;
  check_int "all frames delivered" 1000 (Array.fold_left ( + ) 0 counts);
  Array.iter (fun n -> check_bool "bond member used" true (n > 100)) counts;
  (* Same flow always takes the same member. *)
  let before = Array.copy counts in
  Switch.input sw ~ingress_port:4
    (make_tcp_frame ~src_port:1000 ~dst_mac:(Ixnet.Mac_addr.of_host_id 100) ());
  Engine.Sim.run sim;
  let diffs = ref 0 in
  Array.iteri (fun i n -> if n <> before.(i) then incr diffs) counts;
  check_int "exactly one member took the repeat flow" 1 !diffs

(* ---------------- NIC ---------------- *)

let make_nic ?(queues = 4) sim =
  let tx = Link.create sim ~gbps:10. ~propagation_ns:0 ~deliver:ignore () in
  Nic.create sim ~mac:(Ixnet.Mac_addr.of_host_id 2) ~queues ~tx ()

let test_nic_rss_steering_consistent () =
  let sim = Engine.Sim.create () in
  let nic = make_nic sim in
  let frame = make_tcp_frame ~src_port:5555 () in
  Nic.receive nic frame;
  Nic.receive nic frame;
  let expected_q =
    Nic.rss_queue_of_tuple nic ~src_ip:(ip 1) ~dst_ip:(ip 2) ~src_port:5555 ~dst_port:80
  in
  let q = Nic.queue nic expected_q in
  check_int "both frames on the RSS queue" 2 (Nic.rx_pending q);
  (* Other queues stayed empty. *)
  for i = 0 to Nic.queue_count nic - 1 do
    if i <> expected_q then check_int "other queue empty" 0 (Nic.rx_pending (Nic.queue nic i))
  done

let test_nic_drops_when_ring_empty () =
  let sim = Engine.Sim.create () in
  let nic = make_nic ~queues:1 sim in
  let q = Nic.queue nic 0 in
  (* Consume all descriptors. *)
  let frame = make_tcp_frame () in
  let free0 = Nic.free_descriptors q in
  for _ = 1 to free0 do
    Nic.receive nic frame
  done;
  check_int "ring exhausted" 0 (Nic.free_descriptors q);
  Nic.receive nic frame;
  check_int "drop counted" 1 (Nic.rx_drops nic);
  (* Driver refills. *)
  let pending_before = Nic.rx_pending q in
  let burst = Nic.rx_burst q ~max:64 in
  Nic.replenish q (List.length burst);
  List.iter Mbuf.decref burst;
  Nic.receive nic frame;
  check_int "accepts again after replenish" (pending_before - 64 + 1) (Nic.rx_pending q)

let test_nic_ignores_other_mac () =
  let sim = Engine.Sim.create () in
  let nic = make_nic sim in
  Nic.receive nic (make_tcp_frame ~dst_mac:(Ixnet.Mac_addr.of_host_id 99) ());
  check_int "not received" 0 (Nic.rx_frames nic)

let test_nic_notify_fires () =
  let sim = Engine.Sim.create () in
  let nic = make_nic ~queues:1 sim in
  let kicks = ref 0 in
  Nic.set_notify (Nic.queue nic 0) (fun () -> incr kicks);
  Nic.receive nic (make_tcp_frame ());
  check_int "notified" 1 !kicks

let test_nic_indirection_rebalance () =
  let sim = Engine.Sim.create () in
  let nic = make_nic ~queues:4 sim in
  (* Point every flow group at queue 3. *)
  Nic.set_indirection nic (fun _ -> 3);
  Nic.receive nic (make_tcp_frame ~src_port:1234 ());
  check_int "steered to queue 3" 1 (Nic.rx_pending (Nic.queue nic 3))

(* ---------------- Cache model ---------------- *)

let test_cache_model_curve () =
  let cm = Cache_model.create () in
  let low = Cache_model.misses_per_message cm ~conns:10_000 in
  let high = Cache_model.misses_per_message cm ~conns:250_000 in
  Alcotest.(check (float 0.01)) "in-cache floor (DDIO)" 1.4 low;
  check_bool "250k conns ~25 misses (paper §5.4)" true (high > 20. && high < 30.);
  check_bool "monotone" true
    (Cache_model.misses_per_message cm ~conns:100_000 < high);
  check_int "no extra cost in cache" 0 (Cache_model.extra_ns_per_message cm ~conns:1_000)

(* ---------------- PCIe model ---------------- *)

let test_pcie_coalescing () =
  let pcie = Pcie_model.create () in
  let coalesced = Pcie_model.replenish_cost_ns pcie ~descriptors:64 in
  let single = Pcie_model.create ~replenish_batch:1 () in
  let uncoalesced = Pcie_model.replenish_cost_ns single ~descriptors:64 in
  check_bool "coalescing amortizes 32x" true (uncoalesced = 32 * coalesced);
  check_int "zero descriptors free" 0 (Pcie_model.replenish_cost_ns pcie ~descriptors:0)

(* ---------------- Cpu core ---------------- *)

let test_cpu_core_accounting () =
  let core = Cpu_core.create ~id:0 in
  let t1 = Cpu_core.charge core ~now:0 Cpu_core.Kernel 750 in
  check_int "finishes at 750" 750 t1;
  let t2 = Cpu_core.charge core ~now:100 Cpu_core.User 250 in
  check_int "queues behind kernel work" 1000 t2;
  Alcotest.(check (float 0.001)) "kernel share" 0.75 (Cpu_core.kernel_share core);
  check_bool "busy now" true (Cpu_core.busy core ~now:999);
  check_bool "idle later" false (Cpu_core.busy core ~now:1001);
  Cpu_core.reset_accounting core;
  check_int "reset" 0 (Cpu_core.kernel_ns core)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "hw"
    [
      ( "toeplitz",
        [
          Alcotest.test_case "microsoft vector 1" `Quick test_toeplitz_known_vector;
          Alcotest.test_case "microsoft vector 2" `Quick test_toeplitz_known_vector2;
          Alcotest.test_case "deterministic" `Quick test_toeplitz_deterministic;
          Alcotest.test_case "spreads ports" `Quick test_toeplitz_spreads;
          qt prop_toeplitz_symmetric_key;
        ] );
      ("frame", [ Alcotest.test_case "header peeks" `Quick test_frame_parsing ]);
      ( "link",
        [
          Alcotest.test_case "serialization rate" `Quick test_link_serialization_rate;
          Alcotest.test_case "utilization" `Quick test_link_utilization;
        ] );
      ( "switch",
        [
          Alcotest.test_case "forwards by mac" `Quick test_switch_forwards_by_mac;
          Alcotest.test_case "floods broadcast" `Quick test_switch_floods_broadcast;
          Alcotest.test_case "bond spreads flows" `Quick test_switch_bond_spreads_flows;
        ] );
      ( "nic",
        [
          Alcotest.test_case "rss steering" `Quick test_nic_rss_steering_consistent;
          Alcotest.test_case "ring exhaustion drops" `Quick test_nic_drops_when_ring_empty;
          Alcotest.test_case "mac filter" `Quick test_nic_ignores_other_mac;
          Alcotest.test_case "notify" `Quick test_nic_notify_fires;
          Alcotest.test_case "indirection table" `Quick test_nic_indirection_rebalance;
        ] );
      ("cache", [ Alcotest.test_case "ddio miss curve" `Quick test_cache_model_curve ]);
      ("pcie", [ Alcotest.test_case "doorbell coalescing" `Quick test_pcie_coalescing ]);
      ("cpu", [ Alcotest.test_case "charge accounting" `Quick test_cpu_core_accounting ]);
    ]
