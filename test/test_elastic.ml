(* The multi-core dataplane contract (DESIGN.md §8): RSS flow-group
   sharding, the no-drop migration protocol, and the elastic policy
   loop.

   - the NIC indirection table is the placement mechanism: rewrites
     are counted [rss_retarget] events, take effect at classification
     time only, and never move the tuple hash itself;
   - a flow group migrates under live echo load without stalling the
     traffic, and under adversarial wire conditions (drops, reorders,
     link flaps — the PR-5 fault plans) the chaos audit still balances
     every conservation ledger: no lost frame, no leaked mbuf, no
     connection without a close reason;
   - runs with elastic scaling active are bit-identical across domain
     pool widths (jobs=1 vs jobs=4), and the migration perf slice is
     deterministic and fast-path-invariant;
   - the sharded sim scales near-linearly with cores (the Fig. 3a
     shape, reduced sweep) and the elastic experiment walks the core
     count up into a burst and back while saving energy vs static
     provisioning. *)

module E = Harness.Experiments
module Chaos = Harness.Chaos
module Cluster = Harness.Cluster
module FP = Ix_faults.Fault_plan
module Nic = Ixhw.Nic
module Ix_host = Ix_core.Ix_host
module Control_plane = Ix_core.Control_plane
module Sim = Engine.Sim
module Sim_time = Engine.Sim_time

(* Tiny windows: these tests are about invariants, not model fidelity. *)
let () = Unix.putenv "IX_BENCH_SCALE" "0.05"

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---------------- NIC indirection semantics ---------------- *)

let test_indirection_rewrite () =
  let server = Cluster.server_spec ~threads:2 Cluster.Ix in
  let cluster = Cluster.build ~client_hosts:1 ~client_threads:1 ~server () in
  let nic = cluster.Cluster.server_nics.(0) in
  let g = 7 in
  let q0 = Nic.indirection_entry nic g in
  let q1 = (q0 + 1) mod Nic.queue_count nic in
  let before = Nic.rss_retargets nic in
  Nic.set_indirection_entry nic ~group:g ~queue:q0;
  check_int "same-value write is not a retarget" before (Nic.rss_retargets nic);
  Nic.set_indirection_entry nic ~group:g ~queue:q1;
  check_int "rewrite counts one rss_retarget" (before + 1)
    (Nic.rss_retargets nic);
  check_int "readback sees the new queue" q1 (Nic.indirection_entry nic g);
  (* Bulk rewrite counts only the entries that changed. *)
  let before = Nic.rss_retargets nic in
  Nic.set_indirection nic (fun group -> Nic.indirection_entry nic group);
  check_int "identity bulk rewrite counts nothing" before
    (Nic.rss_retargets nic);
  Alcotest.check_raises "group out of range"
    (Invalid_argument "Nic.set_indirection_entry: group") (fun () ->
      Nic.set_indirection_entry nic ~group:Nic.indirection_entries ~queue:0);
  Alcotest.check_raises "queue out of range"
    (Invalid_argument "Nic.set_indirection_entry: queue") (fun () ->
      Nic.set_indirection_entry nic ~group:0 ~queue:(Nic.queue_count nic))

let test_group_hash_placement_independent () =
  (* The unit of placement: a tuple's flow group depends only on the
     RSS key, so retargeting an entry moves where frames land, never
     which group they belong to. *)
  let server = Cluster.server_spec ~threads:2 Cluster.Ix in
  let cluster = Cluster.build ~client_hosts:1 ~client_threads:1 ~server () in
  let nic = cluster.Cluster.server_nics.(0) in
  let src_ip = List.hd cluster.Cluster.client_ips in
  let dst_ip = cluster.Cluster.server_ip in
  let group =
    Nic.rss_group_of_tuple nic ~src_ip ~dst_ip ~src_port:40001 ~dst_port:7000
  in
  let q = Nic.indirection_entry nic group in
  Nic.set_indirection_entry nic ~group ~queue:((q + 1) mod Nic.queue_count nic);
  check_int "hash unchanged by the retarget" group
    (Nic.rss_group_of_tuple nic ~src_ip ~dst_ip ~src_port:40001 ~dst_port:7000)

(* ---------------- Control plane ---------------- *)

let test_control_plane_bounds () =
  let server = Cluster.server_spec ~threads:2 Cluster.Ix in
  let cluster = Cluster.build ~client_hosts:1 ~client_threads:1 ~server () in
  let host = Option.get cluster.Cluster.server_ix in
  let cp = Control_plane.create host in
  check_int "starts at capacity" 2 (Control_plane.active_threads cp);
  check_bool "shrink 2 -> 1" true (Control_plane.remove_core cp);
  Sim.run cluster.Cluster.sim;
  check_int "one live thread after shrink" 1 (Ix_host.live_threads host);
  check_bool "cannot shrink below one" false (Control_plane.remove_core cp);
  check_bool "grow 1 -> 2" true (Control_plane.add_core cp);
  Sim.run cluster.Cluster.sim;
  check_int "back at capacity" 2 (Ix_host.live_threads host);
  check_bool "cannot grow past capacity" false (Control_plane.add_core cp);
  check_int "nothing left in flight" 0 (Control_plane.migrations_in_flight cp)

let test_migrate_under_live_load () =
  (* Shrink to one core and grow back while echo sessions are running:
     traffic keeps flowing across both transitions, every migration
     completes, and the NIC counted the indirection rewrites. *)
  let server = Cluster.server_spec ~threads:2 Cluster.Ix in
  let cluster =
    Cluster.build ~seed:7 ~client_hosts:2 ~client_threads:2
      ~client_kind:Cluster.Ix ~server ()
  in
  let sim = cluster.Cluster.sim in
  let host = Option.get cluster.Cluster.server_ix in
  let cp = Control_plane.create host in
  Apps.Echo.server cluster.Cluster.server ~port:7 ~msg_size:64 ~app_ns:100;
  let stats = Apps.Echo.new_stats () in
  let stop = Sim_time.ms 6 in
  List.iteri
    (fun i client ->
      for thread = 0 to 1 do
        Apps.Echo.client client
          ~now:(Cluster.now cluster)
          ~thread ~server_ip:cluster.Cluster.server_ip ~port:7 ~msg_size:64
          ~msgs_per_conn:256 ~stats ~stop_after:stop
      done;
      ignore i)
    cluster.Cluster.clients;
  let mid = ref 0 in
  ignore
    (Sim.at sim (Sim_time.ms 2) (fun () ->
         mid := stats.Apps.Echo.messages;
         Control_plane.set_elastic_threads cp 1));
  ignore
    (Sim.at sim (Sim_time.ms 4) (fun () ->
         Control_plane.set_elastic_threads cp 2));
  Sim.run ~until:(Sim_time.ms 8) sim;
  Sim.run sim;
  check_bool "migrations completed" true
    (Control_plane.migrations_completed cp > 0);
  check_int "none stuck in flight" 0 (Control_plane.migrations_in_flight cp);
  let retargets =
    Array.fold_left
      (fun acc nic -> acc + Nic.rss_retargets nic)
      0 cluster.Cluster.server_nics
  in
  check_bool "rss retargets counted" true (retargets > 0);
  check_bool "traffic flowed before the swap" true (!mid > 0);
  check_bool "traffic kept flowing across the swaps" true
    (stats.Apps.Echo.messages > !mid);
  check_int "live threads back at capacity" 2 (Ix_host.live_threads host)

(* ---------------- Migration under faults (qcheck) ---------------- *)

(* The PR-5 fault classes that stress a migration: frames destroyed on
   the wire, frames delayed past the indirection swap, links going dark
   mid-handover.  Rates stay moderate so traffic still flows; the chaos
   audit is the property. *)
let fault_gen =
  let open QCheck.Gen in
  let rate bound = map (fun k -> float_of_int k /. 1000.) (int_bound bound) in
  rate 150 >>= fun drop_rate ->
  rate 300 >>= fun reorder_rate ->
  int_range 1_000 200_000 >>= fun reorder_delay_ns ->
  oneof
    [
      return (0, 0);
      (int_range 400_000 1_000_000 >>= fun p ->
       int_range 20_000 150_000 >>= fun w -> return (p, w));
    ]
  >>= fun (flap_period_ns, flap_down_ns) ->
  int_bound 999 >>= fun seed ->
  return
    ( {
        FP.none with
        FP.drop_rate;
        reorder_rate;
        reorder_delay_ns;
        flap_period_ns;
        flap_down_ns;
      },
      seed )

let prop_migrate_under_faults =
  QCheck.Test.make
    ~name:"migration under drops/reorders/flaps: audit clean, no frame lost"
    ~count:10
    (QCheck.make
       ~print:(fun (spec, seed) ->
         Printf.sprintf "seed=%d plan=%s" seed (FP.to_string spec))
       fault_gen)
    (fun (spec, seed) ->
      let leg =
        Chaos.echo_leg ~seed ~spec ~soak_ms:3 ~server_threads:4
          ~elastic_steps:[ 2; 4; 1; 3 ] ()
      in
      if leg.Chaos.audit_failures <> [] then
        QCheck.Test.fail_reportf "audit failed:\n  %s"
          (String.concat "\n  " leg.Chaos.audit_failures)
      else if leg.Chaos.migrated = 0 then
        QCheck.Test.fail_reportf "no migration completed"
      else true)

(* ---------------- Determinism with scaling active ---------------- *)

let elastic_leg seed () =
  (Chaos.echo_leg ~seed ~soak_ms:3 ~server_threads:4 ~elastic_steps:[ 2; 4 ] ())
    .Chaos.snapshot

let test_jobs_bit_identical () =
  let thunks = [ elastic_leg 11; elastic_leg 12; elastic_leg 13 ] in
  let seq = Engine.Domain_pool.map_jobs ~jobs:1 thunks in
  let par = Engine.Domain_pool.map_jobs ~jobs:4 thunks in
  check_bool "jobs=4 bit-identical to jobs=1 with migrations active" true
    (seq = par)

let test_migration_slice_deterministic () =
  let a = E.perf_migration_slice () in
  let b = E.perf_migration_slice () in
  check_string "same seed, byte-identical snapshot" a.E.perf_snapshot
    b.E.perf_snapshot;
  (* Header prediction is a pure optimization: turning it off must not
     change what the migration measured. *)
  let off = E.perf_migration_slice ~fast_path:false () in
  check_string "fast-path off, bit-identical snapshot" a.E.perf_snapshot
    off.E.perf_snapshot

(* ---------------- Scaling shapes ---------------- *)

let test_fig3a_near_linear () =
  (* Reduced Fig. 3a sweep: 4 per-core dataplanes behind the RSS
     indirection table must land well past 2x one core. *)
  let point cores =
    E.run_echo ~kind:Cluster.Ix ~ports:1 ~cores ~msg_size:64 ~msgs_per_conn:1
      ()
  in
  let p1 = point 1 and p4 = point 4 in
  check_bool "1-core throughput positive" true (p1.E.msgs_per_sec > 0.);
  check_bool
    (Printf.sprintf "4 cores scale past 2x (got %.2fx)"
       (p4.E.msgs_per_sec /. p1.E.msgs_per_sec))
    true
    (p4.E.msgs_per_sec > 2. *. p1.E.msgs_per_sec)

let test_elastic_scaling_smoke () =
  let r = E.elastic_scaling () in
  check_bool "controller sampled" true (r.E.el_samples <> []);
  check_bool "scaled past one core into the burst" true (r.E.el_peak_cores >= 2);
  check_bool "scaling was flow-group migration" true (r.E.el_migrations > 0);
  check_bool "messages flowed" true (r.E.el_msgs > 0);
  check_bool "elastic curve burns less than static provisioning" true
    (r.E.el_energy_j < r.E.el_static_energy_j)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "elastic"
    [
      ( "indirection",
        [
          Alcotest.test_case "rewrite semantics + rss_retarget" `Quick
            test_indirection_rewrite;
          Alcotest.test_case "group hash placement-independent" `Quick
            test_group_hash_placement_independent;
        ] );
      ( "control-plane",
        [
          Alcotest.test_case "add/remove core bounds" `Quick
            test_control_plane_bounds;
          Alcotest.test_case "migrate under live load" `Quick
            test_migrate_under_live_load;
        ] );
      ("migration-faults", [ qt prop_migrate_under_faults ]);
      ( "determinism",
        [
          Alcotest.test_case "jobs=1 vs jobs=4 with elastic active" `Quick
            test_jobs_bit_identical;
          Alcotest.test_case "migration slice snapshot" `Quick
            test_migration_slice_deterministic;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "fig3a reduced sweep near-linear" `Quick
            test_fig3a_near_linear;
          Alcotest.test_case "elastic experiment smoke" `Quick
            test_elastic_scaling_smoke;
        ] );
    ]
