(* Tests for the ECN/DCTCP extension (paper §6): CE marking at links,
   incremental checksum updates, ECE echo, the DCTCP window law, and
   the incast experiment's headline ordering. *)

module Mbuf = Ixmem.Mbuf
module Frame = Ixhw.Frame
module Link = Ixhw.Link
open Ixtcp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ip_a = Ixnet.Ip_addr.of_octets 10 0 0 1
let ip_b = Ixnet.Ip_addr.of_octets 10 0 0 2

let make_ip_frame ?(payload = "payload") () =
  let m = Mbuf.create () in
  Mbuf.append m payload;
  Ixnet.Udp_packet.prepend m ~src:ip_a ~dst:ip_b ~src_port:1 ~dst_port:2;
  Ixnet.Ipv4_packet.prepend m
    {
      Ixnet.Ipv4_packet.src = ip_a;
      dst = ip_b;
      protocol = Ixnet.Ipv4_packet.Udp;
      ttl = 64;
      ecn = 0;
      payload_len = m.Mbuf.len;
    };
  Ixnet.Ethernet.prepend m
    {
      Ixnet.Ethernet.dst = Ixnet.Mac_addr.of_host_id 2;
      src = Ixnet.Mac_addr.of_host_id 1;
      ethertype = Ixnet.Ethernet.Ipv4;
    };
  let frame = Frame.of_mbuf m in
  Mbuf.decref m;
  frame

(* ---------------- CE marking ---------------- *)

let test_with_ce_sets_bits_and_checksum () =
  let frame = make_ip_frame () in
  check_bool "initially unmarked" false (Frame.is_ce frame);
  let marked = Frame.with_ce frame in
  check_bool "marked" true (Frame.is_ce marked);
  (* The marked frame must still decode with a valid IP checksum. *)
  let m = Mbuf.create () in
  Frame.to_mbuf marked ~into:m;
  (match Ixnet.Ethernet.decode m with Ok _ -> () | Error e -> Alcotest.fail e);
  (match Ixnet.Ipv4_packet.decode m with
  | Ok ip ->
      check_int "ECN field CE" Ixnet.Ipv4_packet.ce ip.Ixnet.Ipv4_packet.ecn
  | Error e -> Alcotest.fail ("checksum after marking: " ^ e));
  Mbuf.decref m;
  (* Idempotent. *)
  check_bool "re-marking is identity" true (Frame.with_ce marked == marked)

let test_link_marks_past_threshold () =
  let sim = Engine.Sim.create () in
  let delivered_ce = ref 0 and delivered = ref 0 in
  let link =
    Link.create sim ~gbps:10. ~propagation_ns:0 ~ecn_threshold_bytes:2_000
      ~deliver:(fun f ->
        incr delivered;
        if Frame.is_ce f then incr delivered_ce)
      ()
  in
  (* ~1.4KB wire each; the first two fit under the 2KB backlog
     threshold, later ones queue behind more than that. *)
  for _ = 1 to 10 do
    Link.send link (make_ip_frame ~payload:(String.make 1400 'x') ())
  done;
  Engine.Sim.run sim;
  check_int "all delivered" 10 !delivered;
  check_bool "later frames marked" true (!delivered_ce >= 5);
  check_bool "early frames unmarked" true (!delivered_ce < 10);
  check_int "mark counter" !delivered_ce (Link.marked link)

let test_link_drops_past_limit () =
  let sim = Engine.Sim.create () in
  let delivered = ref 0 in
  let link =
    Link.create sim ~gbps:10. ~propagation_ns:0 ~queue_limit_bytes:2_000
      ~deliver:(fun _ -> incr delivered)
      ()
  in
  for _ = 1 to 10 do
    Link.send link (make_ip_frame ~payload:(String.make 1400 'x') ())
  done;
  Engine.Sim.run sim;
  check_bool "some dropped" true (Link.dropped link > 0);
  check_int "conservation" 10 (!delivered + Link.dropped link)

(* ---------------- DCTCP window law ---------------- *)

let test_dctcp_alpha_converges () =
  let c = Congestion.create ~dctcp:true ~mss:1000 ~initial_window_segs:10 () in
  (* Every byte marked, repeatedly: alpha -> 1, cwnd shrinks toward
     half per window. *)
  for _ = 1 to 400 do
    Congestion.on_ecn_feedback c ~acked_bytes:5_000 ~marked:true
  done;
  check_bool "alpha grew toward 1" true (Congestion.dctcp_alpha c > 0.8);
  check_bool "window collapsed" true (Congestion.cwnd c <= 4_000)

let test_dctcp_proportionality () =
  (* A lightly marked flow must keep most of its window; a heavily
     marked one must not. *)
  let run fraction =
    let c = Congestion.create ~dctcp:true ~mss:1000 ~initial_window_segs:100 () in
    for i = 1 to 1000 do
      Congestion.on_ecn_feedback c ~acked_bytes:1_000
        ~marked:(i mod 100 < fraction)
    done;
    Congestion.cwnd c
  in
  let light = run 5 and heavy = run 80 in
  check_bool "light marking keeps more window" true (light > 2 * heavy)

let test_dctcp_ignores_marks_when_disabled () =
  let c = Congestion.create ~mss:1000 ~initial_window_segs:10 () in
  for _ = 1 to 100 do
    Congestion.on_ecn_feedback c ~acked_bytes:10_000 ~marked:true
  done;
  check_int "newreno untouched by ECN feedback" 10_000 (Congestion.cwnd c);
  Alcotest.(check (float 0.0001)) "alpha stays 0" 0. (Congestion.dctcp_alpha c)

(* ---------------- ECE echo at the segment level ---------------- *)

let test_ece_echoed_on_ce () =
  (* Drive a DCTCP tcb directly: a CE-marked data segment must produce
     an ECE-flagged ACK. *)
  let wheel = Timerwheel.Timer_wheel.create ~now:0 () in
  let sent = ref [] in
  let env =
    Tcb.make_env
      ~now:(fun () -> 0)
      ~wheel
      ~alloc:(fun () -> Some (Mbuf.create ()))
      ~output:(fun _tcb mbuf ->
        (match Ixnet.Tcp_segment.decode mbuf ~src:ip_b ~dst:ip_a with
        | Ok seg -> sent := seg :: !sent
        | Error _ -> ());
        Mbuf.decref mbuf)
      ~rng:(Engine.Rng.create ~seed:1) ~handle_alloc:(ref 0) ()
  in
  let cfg = { Tcb.default_config with Tcb.dctcp = true; delack_segs = 1 } in
  (* Passive open via a synthetic SYN. *)
  let syn_mbuf = Mbuf.create () in
  let syn =
    {
      Ixnet.Tcp_segment.src_port = 50_000;
      dst_port = 80;
      seq = 1_000;
      ack = 0;
      syn = true;
      ack_flag = false;
      fin = false;
      rst = false;
      psh = false;
      ece = false;
      cwr = false;
      window = 65_000;
      mss = Some 1460;
      wscale = Some 7;
      sack = None;
      payload_off = 0;
      payload_len = 0;
    }
  in
  Ixnet.Tcp_segment.prepend syn_mbuf ~src:ip_b ~dst:ip_a syn;
  let tcb =
    Tcp_conn.accept_syn env cfg ~local_ip:ip_a ~remote_ip:ip_b ~segment:syn ~cookie:0
  in
  Mbuf.decref syn_mbuf;
  (* Complete the handshake (plain ACK), then deliver CE-marked data. *)
  let make_seg ?(payload = "") seq =
    let m = Mbuf.create () in
    if payload <> "" then Mbuf.append m payload;
    let seg =
      {
        syn with
        Ixnet.Tcp_segment.syn = false;
        ack_flag = true;
        seq;
        ack = Seqno.add (Tcb.iss tcb) 1;
        mss = None;
        wscale = None;
      }
    in
    Ixnet.Tcp_segment.prepend m ~src:ip_b ~dst:ip_a seg;
    match Ixnet.Tcp_segment.decode m ~src:ip_b ~dst:ip_a with
    | Ok decoded -> (decoded, m)
    | Error e -> Alcotest.fail e
  in
  let ack_seg, m1 = make_seg 1_001 in
  Tcp_conn.input tcb ack_seg m1;
  Mbuf.decref m1;
  sent := [];
  let data_seg, m2 = make_seg ~payload:"hello" 1_001 in
  Tcp_conn.input ~ce:true tcb data_seg m2;
  Mbuf.decref m2;
  (match !sent with
  | [ ack ] -> check_bool "ECE echoed" true ack.Ixnet.Tcp_segment.ece
  | other -> Alcotest.failf "expected one ACK, got %d segments" (List.length other));
  (* A later unmarked segment's ACK carries no ECE. *)
  sent := [];
  let data2, m3 = make_seg ~payload:"world" 1_006 in
  Tcp_conn.input ~ce:false tcb data2 m3;
  Mbuf.decref m3;
  match !sent with
  | [ ack ] -> check_bool "no spurious ECE" false ack.Ixnet.Tcp_segment.ece
  | other -> Alcotest.failf "expected one ACK, got %d segments" (List.length other)

(* ---------------- Incast trend ---------------- *)

let test_incast_fine_timers_beat_coarse () =
  let coarse =
    { Ix_core.Ix_host.ix_tcp_config with Ixtcp.Tcb.min_rto_ns = 200_000_000 }
  in
  let fine = Ix_core.Ix_host.ix_tcp_config in
  let g_coarse =
    Harness.Experiments.run_incast ~senders:16 ~block:(64 * 1024) ~config:coarse
      ~ecn:false
  in
  let g_fine =
    Harness.Experiments.run_incast ~senders:16 ~block:(64 * 1024) ~config:fine
      ~ecn:false
  in
  check_bool "fine-grained RTO rescues incast goodput (>=10x)" true
    (g_fine > 10. *. g_coarse)

let test_incast_dctcp_reduces_drops () =
  let fine = Ix_core.Ix_host.ix_tcp_config in
  let dctcp = { fine with Ixtcp.Tcb.dctcp = true } in
  let _, _, drops_fine =
    Harness.Experiments.run_incast_stats ~senders:8 ~block:(256 * 1024)
      ~config:fine ~ecn:false
  in
  let g_dctcp, marks, drops_dctcp =
    Harness.Experiments.run_incast_stats ~senders:8 ~block:(256 * 1024)
      ~config:dctcp ~ecn:true
  in
  check_bool "ECN marks happened" true (marks > 0);
  check_bool "DCTCP sheds load before the queue overflows" true
    (drops_dctcp < drops_fine);
  check_bool "and still moves data" true (g_dctcp > 1.)

let () =
  Alcotest.run "dctcp"
    [
      ( "marking",
        [
          Alcotest.test_case "with_ce checksum" `Quick test_with_ce_sets_bits_and_checksum;
          Alcotest.test_case "link marks past threshold" `Quick test_link_marks_past_threshold;
          Alcotest.test_case "link drops past limit" `Quick test_link_drops_past_limit;
        ] );
      ( "window_law",
        [
          Alcotest.test_case "alpha converges" `Quick test_dctcp_alpha_converges;
          Alcotest.test_case "proportional backoff" `Quick test_dctcp_proportionality;
          Alcotest.test_case "disabled mode inert" `Quick test_dctcp_ignores_marks_when_disabled;
        ] );
      ("echo", [ Alcotest.test_case "ECE on CE" `Quick test_ece_echoed_on_ce ]);
      ( "incast",
        [
          Alcotest.test_case "fine timers rescue goodput" `Slow
            test_incast_fine_timers_beat_coarse;
          Alcotest.test_case "dctcp reduces drops" `Slow test_incast_dctcp_reduces_drops;
        ] );
    ]
