(* Tests for lib/telemetry: the metrics registry, the log-linear
   histogram, the per-thread cycle tracer and its Chrome trace_event
   exporter — plus the end-to-end acceptance checks: a 64 B echo's
   per-stage breakdown sums to the cores' busy time, and all three
   stacks answer the portable metrics / close-reason API. *)

module Metrics = Ixtelemetry.Metrics
module Log_hist = Ixtelemetry.Log_hist
module Tracer = Ixtelemetry.Tracer
module Trace_export = Ixtelemetry.Trace_export
module Net_api = Netapi.Net_api
module Cluster = Harness.Cluster

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- Metrics registry ---------------- *)

let test_missing_reads_zero () =
  let t = Metrics.create () in
  check_int "absent counter reads 0" 0 (Metrics.counter_value t "no.such.counter");
  Alcotest.(check (float 0.)) "absent gauge reads 0." 0. (Metrics.gauge_value t "no.such.gauge");
  (* Reads never create metrics. *)
  check_int "registry still empty" 0 (List.length (Metrics.snapshot t))

let test_counters_and_hierarchy () =
  let t = Metrics.create () in
  let rx = Metrics.counter t "dataplane.0.rx_pkts" in
  let db = Metrics.counter t "nic.1.q3.doorbells" in
  Metrics.incr rx;
  Metrics.add rx 9;
  Metrics.incr db;
  check_int "cell value" 10 (Metrics.value rx);
  check_int "by name" 10 (Metrics.counter_value t "dataplane.0.rx_pkts");
  (* Re-registering returns the same cell. *)
  Metrics.incr (Metrics.counter t "dataplane.0.rx_pkts");
  check_int "same cell" 11 (Metrics.value rx);
  let snap = Metrics.snapshot t in
  let names = List.map fst snap in
  Alcotest.(check (list string))
    "snapshot sorted by hierarchical name"
    [ "dataplane.0.rx_pkts"; "nic.1.q3.doorbells" ]
    names;
  check_int "snap_counter" 11 (Metrics.snap_counter snap "dataplane.0.rx_pkts");
  (* Prefix filtering: component boundary, not string prefix. *)
  ignore (Metrics.counter t "nic.1.rx_frames");
  ignore (Metrics.counter t "nic.10.rx_frames");
  let under = Metrics.snapshot ~prefix:"nic.1" t in
  Alcotest.(check (list string))
    "prefix respects dot boundaries"
    [ "nic.1.q3.doorbells"; "nic.1.rx_frames" ]
    (List.map fst under)

let test_kind_mismatch_raises () =
  let t = Metrics.create () in
  ignore (Metrics.counter t "x.y");
  let raised =
    try
      ignore (Metrics.histogram t "x.y");
      false
    with Invalid_argument _ -> true
  in
  check_bool "histogram over counter name raises" true raised;
  let raised_g =
    try
      Metrics.set_gauge t "x.y" 1.0;
      false
    with Invalid_argument _ -> true
  in
  check_bool "gauge over counter name raises" true raised_g

let test_probe_gauges () =
  let t = Metrics.create () in
  let level = ref 0.25 in
  Metrics.probe t "kernel_share" (fun () -> !level);
  Alcotest.(check (float 1e-9)) "probe sampled" 0.25 (Metrics.gauge_value t "kernel_share");
  level := 0.75;
  Alcotest.(check (float 1e-9))
    "probe re-sampled at snapshot" 0.75
    (Metrics.snap_gauge (Metrics.snapshot t) "kernel_share")

(* ---------------- Log-linear histogram ---------------- *)

let test_hist_percentiles () =
  let h = Log_hist.create () in
  for v = 1 to 100_000 do
    Log_hist.record h v
  done;
  check_int "count" 100_000 (Log_hist.count h);
  check_int "min exact" 1 (Log_hist.min_value h);
  check_int "max exact" 100_000 (Log_hist.max_value h);
  Alcotest.(check (float 1.0)) "mean exact" 50_000.5 (Log_hist.mean h);
  (* Log-linear with 32 sub-buckets: <= 1/32 relative quantile error. *)
  List.iter
    (fun q ->
      let expected = q *. 100_000. in
      let got = float_of_int (Log_hist.quantile h q) in
      let rel = Float.abs (got -. expected) /. expected in
      if rel > 1. /. 32. then
        Alcotest.failf "q=%.2f: got %.0f, expected %.0f (rel err %.3f)" q got
          expected rel)
    [ 0.25; 0.5; 0.9; 0.99 ]

let test_hist_merge () =
  let a = Log_hist.create () and b = Log_hist.create () in
  Log_hist.record_n a 100 5;
  Log_hist.record b 1_000_000;
  Log_hist.merge_into ~src:b ~dst:a;
  check_int "merged count" 6 (Log_hist.count a);
  check_int "merged max" 1_000_000 (Log_hist.max_value a);
  check_int "merged min" 100 (Log_hist.min_value a)

(* ---------------- Cycle tracer ---------------- *)

let test_tracer_ordering () =
  let tr = Tracer.create ~capacity:64 ~thread:3 () in
  Tracer.span tr Tracer.Rx_driver ~start:0 ~stop:100;
  Tracer.span tr Tracer.Tcp_in ~start:100 ~stop:400;
  Tracer.span tr Tracer.Tcp_in ~start:400 ~stop:400 (* zero-length: dropped *);
  Tracer.span tr Tracer.User_phase ~start:400 ~stop:650;
  check_int "zero-length spans dropped" 3 (Tracer.recorded tr);
  let spans = Tracer.spans tr in
  check_bool "oldest first, non-decreasing starts" true
    (List.for_all2
       (fun (a : Tracer.span) (b : Tracer.span) -> a.Tracer.start <= b.Tracer.start)
       (List.filteri (fun i _ -> i < List.length spans - 1) spans)
       (List.tl spans));
  check_int "busy is the span sum" 650 (Tracer.busy_ns tr);
  let ns_of stage =
    let _, ns, _ = List.find (fun (s, _, _) -> s = stage) (Tracer.breakdown tr) in
    ns
  in
  check_int "tcp-in total" 300 (ns_of Tracer.Tcp_in);
  check_int "idle stage present at zero" 0 (ns_of Tracer.Timer)

let test_tracer_ring_wrap () =
  let tr = Tracer.create ~capacity:4 ~thread:0 () in
  for i = 0 to 9 do
    Tracer.span tr Tracer.Syscall ~start:(i * 10) ~stop:((i * 10) + 5)
  done;
  check_int "all-time recorded" 10 (Tracer.recorded tr);
  check_int "only capacity retained" 4 (List.length (Tracer.spans tr));
  (* Retained window is the most recent spans, oldest first. *)
  (match Tracer.spans tr with
  | first :: _ -> check_int "window starts at span 6" 60 first.Tracer.start
  | [] -> Alcotest.fail "no spans retained");
  (* Totals survive the wrap: all 10 spans counted. *)
  check_int "totals cover wrapped spans" 50 (Tracer.busy_ns tr);
  let _, ns, n =
    List.find (fun (s, _, _) -> s = Tracer.Syscall) (Tracer.breakdown tr)
  in
  check_int "stage ns" 50 ns;
  check_int "stage count" 10 n

(* ---------------- Chrome trace_event export ---------------- *)

(* Minimal scanner for the exporter's fixed-shape JSON: the i-th
   occurrence of each key belongs to the i-th event. *)
let occurrences json needle =
  let n = String.length json and m = String.length needle in
  let rec go i acc =
    if i + m > n then List.rev acc
    else if String.sub json i m = needle then go (i + m) ((i + m) :: acc)
    else go (i + 1) acc
  in
  go 0 []

let numbers_after json key =
  List.map
    (fun start ->
      let stop = ref start in
      while
        !stop < String.length json
        && (match json.[!stop] with
           | '0' .. '9' | '.' | '-' | 'e' | '+' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string (String.sub json start (!stop - start)))
    (occurrences json ("\"" ^ key ^ "\":"))

let run_small_ix_echo () =
  let server = Cluster.server_spec ~threads:2 Cluster.Ix in
  let cluster = Cluster.build ~seed:5 ~client_hosts:1 ~client_threads:2 ~server () in
  Apps.Echo.server cluster.Cluster.server ~port:7 ~msg_size:64 ~app_ns:100;
  let stats = Apps.Echo.new_stats () in
  Apps.Echo.client
    (List.hd cluster.Cluster.clients)
    ~now:(Cluster.now cluster) ~thread:0 ~server_ip:cluster.Cluster.server_ip
    ~port:7 ~msg_size:64 ~msgs_per_conn:64 ~stats
    ~stop_after:(Engine.Sim_time.ms 5);
  Engine.Sim.run ~until:(Engine.Sim_time.ms 10) cluster.Cluster.sim;
  (cluster, stats)

let test_trace_export () =
  let cluster, stats = run_small_ix_echo () in
  check_bool "echo made progress" true (stats.Apps.Echo.messages > 0);
  let host = Option.get cluster.Cluster.server_ix in
  let tracers = Ix_core.Ix_host.tracers host in
  let json = Trace_export.to_json tracers in
  check_bool "wrapped in traceEvents" true
    (String.length json > 16
    && String.sub json 0 16 = "{\"traceEvents\":["
    && String.sub json (String.length json - 2) 2 = "]}");
  let n_events =
    List.fold_left (fun acc tr -> acc + List.length (Tracer.spans tr)) 0 tracers
  in
  check_bool "spans were recorded" true (n_events > 0);
  check_int "one X event per retained span" n_events
    (List.length (occurrences json "\"ph\":\"X\""));
  let ts = numbers_after json "ts"
  and dur = numbers_after json "dur"
  and tid = numbers_after json "tid" in
  check_int "ts per event" n_events (List.length ts);
  check_int "dur per event" n_events (List.length dur);
  check_int "tid per event" n_events (List.length tid);
  List.iter
    (fun d -> check_bool "durations positive" true (d > 0.))
    dur;
  (* Within each thread's track, complete events appear in time order. *)
  let last = Hashtbl.create 4 in
  List.iter2
    (fun tid ts ->
      let prev = try Hashtbl.find last tid with Not_found -> neg_infinity in
      check_bool "timestamps monotonic per tid" true (ts >= prev);
      Hashtbl.replace last tid ts)
    tid ts;
  (* write_file produces the same bytes. *)
  let path = Filename.temp_file "ixtrace" ".json" in
  Trace_export.write_file path tracers;
  let ic = open_in_bin path in
  let from_file = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file matches to_json" json from_file

(* ---------------- Table-2-style breakdown (acceptance) ---------------- *)

let test_echo_breakdown_sums_to_busy () =
  let rows, busy = Harness.Experiments.echo_breakdown ~cores:2 ~msg_size:64 () in
  let total = List.fold_left (fun acc (_, ns, _) -> acc + ns) 0 rows in
  check_bool "server did work" true (busy > 0);
  check_int "per-stage breakdown sums to total busy ns" busy total;
  let ns_of stage =
    let _, ns, _ = List.find (fun (s, _, _) -> s = stage) rows in
    ns
  in
  (* The run-to-completion steps that must show up for an echo load. *)
  List.iter
    (fun stage ->
      check_bool
        (Printf.sprintf "stage %s nonzero" (Tracer.stage_name stage))
        true
        (ns_of stage > 0))
    [
      Tracer.Rx_driver; Tracer.Tcp_in; Tracer.Event_delivery; Tracer.User_phase;
      Tracer.Syscall; Tracer.Timer; Tracer.Tx_driver; Tracer.Crossing;
    ]

(* ---------------- Portable stack API ---------------- *)

let test_stack_metrics_portable () =
  List.iter
    (fun (kind, counter_prefix) ->
      let server = Cluster.server_spec ~threads:2 kind in
      let cluster =
        Cluster.build ~seed:9 ~client_hosts:1 ~client_threads:2 ~server ()
      in
      Apps.Echo.server cluster.Cluster.server ~port:7 ~msg_size:64 ~app_ns:100;
      let stats = Apps.Echo.new_stats () in
      Apps.Echo.client
        (List.hd cluster.Cluster.clients)
        ~now:(Cluster.now cluster) ~thread:0
        ~server_ip:cluster.Cluster.server_ip ~port:7 ~msg_size:64
        ~msgs_per_conn:32 ~stats ~stop_after:(Engine.Sim_time.ms 5);
      Engine.Sim.run ~until:(Engine.Sim_time.ms 10) cluster.Cluster.sim;
      let snap = cluster.Cluster.server.Net_api.metrics () in
      check_bool (counter_prefix ^ ": snapshot non-empty") true (snap <> []);
      check_bool (counter_prefix ^ ": has own hierarchical counters") true
        (List.exists
           (fun (name, v) ->
             (match v with Metrics.Counter n -> n > 0 | _ -> false)
             && String.length name > String.length counter_prefix
             && String.sub name 0 (String.length counter_prefix) = counter_prefix)
           snap);
      (* Shared TCP engine counters surface through the same registry. *)
      check_bool (counter_prefix ^ ": tcp counters present") true
        (List.exists
           (fun (name, _) ->
             String.length name > 4 && String.sub name 0 4 = "tcp.")
           snap);
      let kshare = Net_api.kernel_share cluster.Cluster.server in
      check_bool (counter_prefix ^ ": kernel share in [0,1]") true
        (kshare >= 0. && kshare <= 1.);
      check_bool (counter_prefix ^ ": busy_ns positive") true
        (Net_api.busy_ns cluster.Cluster.server > 0))
    [ (Cluster.Ix, "dataplane."); (Cluster.Linux, "linux."); (Cluster.Mtcp, "mtcp.") ]

let test_close_reasons_portable () =
  List.iter
    (fun kind ->
      let name = match kind with
        | Cluster.Ix -> "ix" | Cluster.Linux -> "linux" | Cluster.Mtcp -> "mtcp"
      in
      let server = Cluster.server_spec ~threads:1 kind in
      let cluster =
        Cluster.build ~seed:3 ~client_hosts:1 ~client_threads:1
          ~client_kind:kind ~server ()
      in
      let reasons = ref [] in
      cluster.Cluster.server.Net_api.listen ~port:9100 (fun ~thread:_ _conn ->
          {
            Net_api.null_handlers with
            Net_api.on_closed =
              (fun _ reason -> reasons := reason :: !reasons);
          });
      let connect_then after =
        cluster.Cluster.clients |> List.hd |> fun client ->
        client.Net_api.connect ~thread:0 ~ip:cluster.Cluster.server_ip
          ~port:9100
          {
            Net_api.null_handlers with
            Net_api.on_connected =
              (fun conn ~ok ->
                if ok then begin
                  ignore (conn.Net_api.send "ping");
                  after conn
                end);
          }
      in
      (* Orderly client close -> server observes Normal. *)
      connect_then (fun conn -> conn.Net_api.close ());
      Engine.Sim.run ~until:(Engine.Sim_time.ms 50) cluster.Cluster.sim;
      Alcotest.(check (list string))
        (name ^ ": orderly close reports Normal")
        [ "normal" ]
        (List.map Net_api.close_reason_name !reasons);
      (* Client RST -> server observes Reset. *)
      reasons := [];
      connect_then (fun conn -> conn.Net_api.abort ());
      Engine.Sim.run ~until:(Engine.Sim_time.ms 100) cluster.Cluster.sim;
      Alcotest.(check (list string))
        (name ^ ": abort reports Reset")
        [ "reset" ]
        (List.map Net_api.close_reason_name !reasons))
    [ Cluster.Ix; Cluster.Linux; Cluster.Mtcp ]

(* ---------------- counter registry (post-shim) ---------------- *)

let test_counter_registry () =
  (* The idioms the old Stats.Counters shim delegated to, used
     directly: one registered cell, updated in place. *)
  let t = Metrics.create () in
  let c = Metrics.counter t "a.b" in
  Metrics.incr c;
  Metrics.add c 4;
  check_int "cell reads back" 5 (Metrics.counter_value t "a.b");
  check_int "missing reads 0" 0 (Metrics.counter_value t "nope");
  Alcotest.(check (list (pair string int)))
    "snapshot filtered to counters"
    [ ("a.b", 5) ]
    (List.filter_map
       (fun (name, v) ->
         match v with Metrics.Counter n -> Some (name, n) | _ -> None)
       (Metrics.snapshot t))

let () =
  Alcotest.run "telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "missing reads zero" `Quick test_missing_reads_zero;
          Alcotest.test_case "hierarchy + sorting" `Quick test_counters_and_hierarchy;
          Alcotest.test_case "kind mismatch raises" `Quick test_kind_mismatch_raises;
          Alcotest.test_case "probe gauges" `Quick test_probe_gauges;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "percentile accuracy" `Quick test_hist_percentiles;
          Alcotest.test_case "merge" `Quick test_hist_merge;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "span ordering" `Quick test_tracer_ordering;
          Alcotest.test_case "ring wrap" `Quick test_tracer_ring_wrap;
        ] );
      ( "trace export",
        [ Alcotest.test_case "chrome json" `Quick test_trace_export ] );
      ( "breakdown",
        [
          Alcotest.test_case "sums to busy time" `Quick
            test_echo_breakdown_sums_to_busy;
        ] );
      ( "portable api",
        [
          Alcotest.test_case "metrics across stacks" `Quick
            test_stack_metrics_portable;
          Alcotest.test_case "close reasons across stacks" `Quick
            test_close_reasons_portable;
        ] );
      ( "counter registry",
        [ Alcotest.test_case "counters" `Quick test_counter_registry ] );
    ]
