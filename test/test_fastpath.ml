(* Header-prediction equivalence suite: the TCP receive fast path is a
   pure optimization, so a stack with [fast_path = true] must be
   observationally identical to one with it disabled — same delivered
   bytes, same close reasons, same final TCB states — under any segment
   stream we can throw at it: reordering (delivery jitter), loss-driven
   retransmits and dup-acks, zero-window stalls with randomized
   window-update cadence, and FIN or RST mid-stream.

   The fixture is the loopback pair from test_tcp: two endpoints joined
   by a delaying, lossy wire, all randomness drawn from seeded RNGs so
   a fast-on and fast-off run see byte-identical schedules. *)

module Mbuf = Ixmem.Mbuf
module Mempool = Ixmem.Mempool
module Iovec = Ixmem.Iovec
module Wheel = Timerwheel.Timer_wheel
module Seg = Ixnet.Tcp_segment
open Ixtcp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ip_a = Ixnet.Ip_addr.of_octets 10 0 0 1
let ip_b = Ixnet.Ip_addr.of_octets 10 0 0 2

type host = { ep : Tcp_endpoint.t; wheel : Wheel.t; pool : Mempool.t }

type net = { sim : Engine.Sim.t; a : host; b : host }

(* [jitter_ns] adds a per-segment random delivery delay on top of the
   base latency, which reorders segments on the wire. *)
let make_net ~fast_path ?(loss = 0.) ?(jitter_ns = 0) ?(delay_ns = 10_000)
    ~seed ?(rcv_buf = Tcb.default_config.Tcb.rcv_buf) () =
  let sim = Engine.Sim.create ~seed () in
  let loss_rng = Engine.Rng.create ~seed:(seed + 100) in
  let jitter_rng = Engine.Rng.create ~seed:(seed + 200) in
  let cfg = { Tcb.default_config with Tcb.fast_path; rcv_buf } in
  let net = ref None in
  let peer_of ip = if ip = ip_a then (Option.get !net).a else (Option.get !net).b in
  let make_host ~local_ip ~seed =
    let wheel = Wheel.create ~now:0 () in
    let pool = Mempool.create ~capacity:32768 ~name:"host" () in
    let output_raw ~remote_ip mbuf =
      if loss > 0. && Engine.Rng.float loss_rng 1.0 < loss then Mbuf.decref mbuf
      else begin
        let extra = if jitter_ns > 0 then Engine.Rng.int jitter_rng jitter_ns else 0 in
        ignore
          (Engine.Sim.after sim (delay_ns + extra) (fun () ->
               let dst = peer_of remote_ip in
               (match Seg.decode mbuf ~src:local_ip ~dst:remote_ip with
               | Ok seg -> Tcp_endpoint.rx_segment dst.ep ~src_ip:local_ip seg mbuf
               | Error e -> Alcotest.failf "segment decode: %s" e);
               Mbuf.decref mbuf))
      end
    in
    let ep =
      Tcp_endpoint.create
        ~now:(fun () -> Engine.Sim.now sim)
        ~wheel
        ~alloc:(fun () -> Mempool.alloc pool)
        ~output_raw
        ~rng:(Engine.Rng.create ~seed)
        ~local_ip ~config:cfg ()
    in
    { ep; wheel; pool }
  in
  let a = make_host ~local_ip:ip_a ~seed:(seed + 1) in
  let b = make_host ~local_ip:ip_b ~seed:(seed + 2) in
  let n = { sim; a; b } in
  net := Some n;
  let rec tick () =
    Wheel.advance a.wheel ~now:(Engine.Sim.now sim);
    Wheel.advance b.wheel ~now:(Engine.Sim.now sim);
    ignore (Engine.Sim.after sim 100_000 tick)
  in
  ignore (Engine.Sim.after sim 100_000 tick);
  n

(* What a run looks like from the outside; two runs are equivalent iff
   these records are equal. *)
type observation = {
  delivered : string;  (* bytes the server's application saw, in order *)
  sent_acked : int;
  client_state : string;
  server_state : string;
  client_close : string;
  server_close : string;
  client_conns : int;
  server_conns : int;
  server_rsts : int;
}

type ending = Orderly | Fin_mid | Rst_mid

let reason_str = function
  | None -> "open"
  | Some Tcb.Normal -> "normal"
  | Some Tcb.Reset -> "reset"
  | Some Tcb.Timeout -> "timeout"
  | Some Tcb.Refused -> "refused"

(* One scripted connection: the client streams [size] bytes at the
   server, whose application consumes in [chunk]-byte bites every
   [drain_ns] (forcing genuine window updates when rcv_buf is small),
   and the stream ends per [ending].  Everything is driven by [seed]. *)
let run_scenario ~fast_path ~seed ~size ~loss ~jitter_ns ~rcv_buf ~chunk
    ~drain_ns ~ending =
  let net = make_net ~fast_path ~loss ~jitter_ns ~seed ~rcv_buf () in
  let delivered = Buffer.create size in
  let server_close = ref None in
  let server_tcb = ref None in
  Tcp_endpoint.listen net.b.ep ~port:80 ~on_accept:(fun tcb ->
      server_tcb := Some tcb;
      tcb.Tcb.callbacks.Tcb.on_recv <-
        (fun mbuf off len ->
          Buffer.add_subbytes delivered mbuf.Mbuf.buf off len;
          Mbuf.decref mbuf);
      tcb.Tcb.callbacks.Tcb.on_closed <-
        (fun reason ->
          server_close := Some reason;
          Tcp_conn.close tcb));
  (* Application drain loop: window updates at a scenario-set cadence. *)
  let rec drain () =
    (* [consume] clamps to what has actually been delivered, so a fixed
       chunk is safe; small chunks against a small rcv_buf force real
       zero-window stalls and window-update segments. *)
    (match !server_tcb with
    | Some tcb -> Tcp_conn.consume tcb chunk
    | None -> ());
    ignore (Engine.Sim.after net.sim drain_ns drain)
  in
  ignore (Engine.Sim.after net.sim drain_ns drain);
  let data = String.init size (fun i -> Char.chr ((i * 131 + seed) land 0xFF)) in
  let client_close = ref None in
  let sent_acked = ref 0 in
  let pos = ref 0 in
  let buf = Bytes.of_string data in
  let tcb =
    Option.get
      (Tcp_endpoint.connect net.a.ep ~remote_ip:ip_b ~remote_port:80 ~cookie:3 ())
  in
  let rec push () =
    if !pos < size then begin
      let iov = { Iovec.buf; off = !pos; len = size - !pos } in
      let accepted = Tcp_conn.send tcb [ iov ] in
      pos := !pos + accepted;
      if accepted > 0 && !pos < size then push ()
    end
    else if ending = Orderly && !sent_acked = size then Tcp_conn.close tcb
  in
  tcb.Tcb.callbacks.Tcb.on_connected <- (fun ok -> if ok then push ());
  tcb.Tcb.callbacks.Tcb.on_sent <-
    (fun n ->
      sent_acked := !sent_acked + n;
      push ());
  tcb.Tcb.callbacks.Tcb.on_closed <- (fun reason -> client_close := Some reason);
  (* Mid-stream endings fire while the transfer is (usually) in flight. *)
  let mid_ns = 2_000_000 + (seed mod 7) * 300_000 in
  (match ending with
  | Orderly -> ()
  | Fin_mid -> ignore (Engine.Sim.after net.sim mid_ns (fun () -> Tcp_conn.close tcb))
  | Rst_mid -> ignore (Engine.Sim.after net.sim mid_ns (fun () -> Tcp_conn.abort tcb)));
  Engine.Sim.run ~until:(Engine.Sim_time.ms 20_000) net.sim;
  let obs =
    {
      delivered = Buffer.contents delivered;
      sent_acked = !sent_acked;
      client_state = Tcp_state.to_string (Tcb.state tcb);
      server_state =
        (match !server_tcb with
        | Some t -> Tcp_state.to_string (Tcb.state t)
        | None -> "NONE");
      client_close = reason_str !client_close;
      server_close = reason_str !server_close;
      client_conns = Tcp_endpoint.connection_count net.a.ep;
      server_conns = Tcp_endpoint.connection_count net.b.ep;
      server_rsts = Tcp_endpoint.rsts_sent net.b.ep;
    }
  in
  let hits = Tcp_endpoint.fast_path_hits net.a.ep + Tcp_endpoint.fast_path_hits net.b.ep in
  (obs, hits)

let explain which (a : observation) (b : observation) =
  QCheck.Test.fail_reportf
    "fast on/off diverged (%s):\n\
     on:  delivered=%d acked=%d client=%s/%s server=%s/%s conns=%d/%d rsts=%d\n\
     off: delivered=%d acked=%d client=%s/%s server=%s/%s conns=%d/%d rsts=%d"
    which (String.length a.delivered) a.sent_acked a.client_state
    a.client_close a.server_state a.server_close a.client_conns a.server_conns
    a.server_rsts (String.length b.delivered) b.sent_acked b.client_state
    b.client_close b.server_state b.server_close b.client_conns b.server_conns
    b.server_rsts

(* The property: for a random scenario, fast-on and fast-off runs are
   observationally identical — and the fast-on run actually exercised
   the predicted path (otherwise the property would pass vacuously). *)
let equivalent ~seed ~size ~loss ~jitter_ns ~rcv_buf ~chunk ~drain_ns ~ending =
  let scenario fp =
    run_scenario ~fast_path:fp ~seed ~size ~loss ~jitter_ns ~rcv_buf ~chunk
      ~drain_ns ~ending
  in
  let on, hits_on = scenario true in
  let off, hits_off = scenario false in
  if hits_off <> 0 then
    QCheck.Test.fail_reportf "fast_path=false still predicted %d segments" hits_off;
  if on <> off then
    explain
      (Printf.sprintf "seed=%d size=%d loss=%.2f jitter=%d end=%s" seed size
         loss jitter_ns
         (match ending with Orderly -> "fin" | Fin_mid -> "fin-mid" | Rst_mid -> "rst-mid"))
      on off;
  ignore hits_on;
  true

let scenario_gen =
  QCheck.make
    ~print:(fun (seed, size, lossi, jit, endi) ->
      Printf.sprintf "seed=%d size=%d loss#%d jitter#%d end#%d" seed size lossi
        jit endi)
    QCheck.Gen.(
      tup5 (int_bound 1000)
        (int_range 1 30_000)
        (int_bound 2) (int_bound 1) (int_bound 2))

let prop_fast_off_equivalence =
  QCheck.Test.make ~name:"fast on/off observationally identical" ~count:18
    scenario_gen
    (fun (seed, size, lossi, jit, endi) ->
      let loss = [| 0.; 0.03; 0.12 |].(lossi) in
      let jitter_ns = [| 0; 25_000 |].(jit) in
      let ending = [| Orderly; Fin_mid; Rst_mid |].(endi) in
      equivalent ~seed:(seed + 1) ~size ~loss ~jitter_ns ~rcv_buf:8192
        ~chunk:(1 + (seed mod 5) * 1024)
        ~drain_ns:(200_000 + (seed mod 3) * 150_000)
        ~ending)

(* Clean bulk transfer: the gate must actually fire (nearly every
   segment is in-order with nothing weird), and disabling it must not
   change the delivered stream. *)
let test_bulk_hits_and_equivalence () =
  let size = 300_000 in
  let run fp =
    run_scenario ~fast_path:fp ~seed:42 ~size ~loss:0. ~jitter_ns:0
      ~rcv_buf:(1 lsl 20) ~chunk:65536 ~drain_ns:100_000 ~ending:Orderly
  in
  let on, hits_on = run true in
  let off, hits_off = run false in
  check_int "delivered everything" size (String.length on.delivered);
  check_bool "fast path fired" true (hits_on > 100);
  check_int "disabled gate never fires" 0 hits_off;
  check_bool "identical observations" true (on = off)

(* Determinism through the parallel harness: the same fast-path slices
   fanned over a 4-wide domain pool must reproduce the sequential
   snapshots bit-for-bit (Domain_pool clamps to the machine width, so
   this holds on any core count). *)
let test_parallel_fast_path_matches_sequential () =
  let slices =
    [
      (fun () -> (Harness.Experiments.perf_fig2_slice ~sizes:[ 256 ] ()).Harness.Experiments.perf_snapshot);
      (fun () -> (Harness.Experiments.perf_fig2_slice ~sizes:[ 1024 ] ()).Harness.Experiments.perf_snapshot);
      (fun () -> (Harness.Experiments.perf_fig2_slice ~sizes:[ 4096 ] ()).Harness.Experiments.perf_snapshot);
      (fun () -> (Harness.Experiments.perf_fig2_slice ~sizes:[ 256; 1024 ] ()).Harness.Experiments.perf_snapshot);
    ]
  in
  let sequential = List.map (fun f -> f ()) slices in
  let parallel = Engine.Domain_pool.map_jobs ~jobs:4 slices in
  List.iteri
    (fun i (s, p) ->
      Alcotest.(check string) (Printf.sprintf "slice %d snapshot" i) s p)
    (List.combine sequential parallel)

(* Experiment-level escape hatch: a reduced fig2 slice with the fast
   path disabled must reproduce the enabled snapshot bit-for-bit. *)
let test_slice_snapshot_fast_off () =
  let on = Harness.Experiments.perf_fig2_slice ~sizes:[ 1024 ] () in
  let off = Harness.Experiments.perf_fig2_slice ~fast_path:false ~sizes:[ 1024 ] () in
  Alcotest.(check string) "snapshots identical"
    on.Harness.Experiments.perf_snapshot off.Harness.Experiments.perf_snapshot;
  check_bool "fast-on slice predicted segments" true
    (on.Harness.Experiments.perf_fast_hits > 0);
  check_int "fast-off slice predicted none" 0 off.Harness.Experiments.perf_fast_hits

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "fastpath"
    [
      ( "equivalence",
        [
          Alcotest.test_case "bulk transfer hits + identical" `Quick
            test_bulk_hits_and_equivalence;
          qt prop_fast_off_equivalence;
        ] );
      ( "harness",
        [
          Alcotest.test_case "jobs=4 matches sequential" `Quick
            test_parallel_fast_path_matches_sequential;
          Alcotest.test_case "slice snapshot with fast path off" `Quick
            test_slice_snapshot_fast_off;
        ] );
    ]
