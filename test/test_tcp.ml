(* TCP engine tests over a loopback fixture: two endpoints joined by a
   lossy, delaying "wire", with timing wheels pumped from the event
   loop.  The property tests assert TCP's contract — exactly-once,
   in-order delivery — under random loss. *)

module Mbuf = Ixmem.Mbuf
module Mempool = Ixmem.Mempool
module Iovec = Ixmem.Iovec
module Wheel = Timerwheel.Timer_wheel
module Seg = Ixnet.Tcp_segment
open Ixtcp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ip_a = Ixnet.Ip_addr.of_octets 10 0 0 1
let ip_b = Ixnet.Ip_addr.of_octets 10 0 0 2

type host = {
  ep : Tcp_endpoint.t;
  wheel : Wheel.t;
  pool : Mempool.t;
}

type net = {
  sim : Engine.Sim.t;
  a : host;
  b : host;
  mutable drops : int;
}

(* Build two endpoints joined back-to-back.  [loss] drops each segment
   with the given probability; [delay_ns] is the one-way latency. *)
let make_net ?(loss = 0.) ?(delay_ns = 10_000) ?(seed = 1) ?config
    ?(wire_up = fun (_ : int) -> true) () =
  let sim = Engine.Sim.create ~seed () in
  let loss_rng = Engine.Rng.create ~seed:(seed + 100) in
  let cfg = match config with Some c -> c | None -> Tcb.default_config in
  let net = ref None in
  let peer_of ip = if ip = ip_a then (Option.get !net).a else (Option.get !net).b in
  let make_host ~local_ip ~seed =
    let wheel = Wheel.create ~now:0 () in
    let pool = Mempool.create ~capacity:32768 ~name:"host" () in
    let rec host =
      lazy
        (let output_raw ~remote_ip mbuf =
           let this = Lazy.force host in
           ignore this;
           (* The loss draw stays first (and gated on [loss > 0.]) so
              seeds reproduce the same drop pattern whether or not a
              flap window is configured. *)
           let lost = loss > 0. && Engine.Rng.float loss_rng 1.0 < loss in
           if lost || not (wire_up (Engine.Sim.now sim)) then begin
             (Option.get !net).drops <- (Option.get !net).drops + 1;
             Mbuf.decref mbuf
           end
           else begin
             ignore
               (Engine.Sim.after sim delay_ns (fun () ->
                    let dst = peer_of remote_ip in
                    (* The peer decodes the raw TCP segment. *)
                    (match Seg.decode mbuf ~src:local_ip ~dst:remote_ip with
                    | Ok seg -> Tcp_endpoint.rx_segment dst.ep ~src_ip:local_ip seg mbuf
                    | Error e -> Alcotest.failf "segment decode: %s" e);
                    Mbuf.decref mbuf))
           end
         in
         let ep =
           Tcp_endpoint.create
             ~now:(fun () -> Engine.Sim.now sim)
             ~wheel
             ~alloc:(fun () -> Mempool.alloc pool)
             ~output_raw
             ~rng:(Engine.Rng.create ~seed)
             ~local_ip ~config:cfg ()
         in
         { ep; wheel; pool })
    in
    Lazy.force host
  in
  let a = make_host ~local_ip:ip_a ~seed:(seed + 1) in
  let b = make_host ~local_ip:ip_b ~seed:(seed + 2) in
  let n = { sim; a; b; drops = 0 } in
  net := Some n;
  (* Pump both timing wheels every 100 us. *)
  let rec tick () =
    Wheel.advance a.wheel ~now:(Engine.Sim.now sim);
    Wheel.advance b.wheel ~now:(Engine.Sim.now sim);
    ignore (Engine.Sim.after sim 100_000 tick)
  in
  ignore (Engine.Sim.after sim 100_000 tick);
  n

let run net ~ms = Engine.Sim.run ~until:(Engine.Sim_time.ms ms) net.sim

(* An accumulating sink server: collects everything it receives. *)
let sink_server ?(consume = true) host ~port =
  let received = Buffer.create 1024 in
  let closed = ref false in
  Tcp_endpoint.listen host.ep ~port ~on_accept:(fun tcb ->
      tcb.Tcb.callbacks.Tcb.on_recv <-
        (fun mbuf off len ->
          Buffer.add_subbytes received mbuf.Mbuf.buf off len;
          if consume then Tcp_conn.consume tcb len;
          Mbuf.decref mbuf);
      tcb.Tcb.callbacks.Tcb.on_closed <-
        (fun _reason ->
          closed := true;
          Tcp_conn.close tcb));
  (received, closed)

(* A client that connects and streams [data], reissuing on [sent]. *)
let streaming_client host ~remote_ip ~port ~data ?(close_when_done = false) () =
  let connected = ref false in
  let refused = ref false in
  let sent_acked = ref 0 in
  let pos = ref 0 in
  let total = String.length data in
  let buf = Bytes.of_string data in
  let tcb_ref = ref None in
  let rec push tcb =
    if !pos < total then begin
      let iov = { Iovec.buf; off = !pos; len = total - !pos } in
      let accepted = Tcp_conn.send tcb [ iov ] in
      pos := !pos + accepted;
      if accepted > 0 && !pos < total then push tcb
    end
    else if close_when_done && !pos = total && !sent_acked = total then
      Tcp_conn.close tcb
  in
  let tcb =
    Option.get
      (Tcp_endpoint.connect host.ep ~remote_ip ~remote_port:port ~cookie:7 ())
  in
  tcb_ref := Some tcb;
  tcb.Tcb.callbacks.Tcb.on_connected <-
    (fun ok ->
      if ok then begin
        connected := true;
        push tcb
      end
      else refused := true);
  tcb.Tcb.callbacks.Tcb.on_sent <-
    (fun n ->
      sent_acked := !sent_acked + n;
      push tcb);
  (tcb, connected, refused, sent_acked)

(* ---------------- Seqno ---------------- *)

let test_seqno_wraparound () =
  check_int "add wraps" 5 (Seqno.add 0xFFFFFFFE 7);
  check_bool "lt across wrap" true (Seqno.lt 0xFFFFFFF0 5);
  check_bool "gt across wrap" true (Seqno.gt 5 0xFFFFFFF0);
  check_int "diff across wrap" 21 (Seqno.diff 5 0xFFFFFFF0);
  check_int "negative diff" (-21) (Seqno.diff 0xFFFFFFF0 5);
  check_int "max picks later" 5 (Seqno.max 5 0xFFFFFFF0)

let prop_seqno_ordering_antisymmetric =
  QCheck.Test.make ~name:"seqno lt/gt antisymmetric" ~count:500
    QCheck.(pair (int_bound 0xFFFFFFFF) (int_bound 0xFFFFFFFF))
    (fun (a, b) ->
      QCheck.assume (Seqno.diff a b <> 0);
      Seqno.lt a b = Seqno.gt b a && Seqno.lt a b <> Seqno.lt b a)

let prop_seqno_add_orders_across_wrap =
  QCheck.Test.make ~name:"s < s+d for 0 < d < 2^31, across the wrap"
    ~count:1000
    QCheck.(pair (int_bound 0xFFFFFFFF) (int_range 1 0x7FFFFFFE))
    (fun (s, d) ->
      let s' = Seqno.add s d in
      Seqno.lt s s' && Seqno.gt s' s && Seqno.le s s'
      && (not (Seqno.le s' s))
      && Seqno.diff s' s = d)

let prop_seqno_le_reflexive_antisymmetric =
  QCheck.Test.make ~name:"le reflexive and antisymmetric across wrap"
    ~count:1000
    QCheck.(pair (int_bound 0xFFFFFFFF) (int_bound 0xFFFFFFFF))
    (fun (a, b) ->
      Seqno.le a a
      &&
      if Seqno.diff a b = 0 then Seqno.le a b && Seqno.le b a
      else Seqno.le a b <> Seqno.le b a)

(* The window-acceptance predicate the input path relies on:
   [start <= s < start + len] in circular arithmetic. *)
let window_contains ~start ~len s =
  Seqno.le start s && Seqno.lt s (Seqno.add start len)

let prop_seqno_window_contains =
  QCheck.Test.make ~name:"window membership across the 2^32 wrap"
    ~count:1000
    QCheck.(
      triple (int_bound 0xFFFFFFFF) (int_range 1 65535) (int_bound 0xFFFFFFFF))
    (fun (start, wnd, k) ->
      let inside = Seqno.add start (k mod wnd) in
      let below = Seqno.sub start (1 + (k mod 1000)) in
      let at_edge = Seqno.add start wnd in
      window_contains ~start ~len:wnd inside
      && (not (window_contains ~start ~len:wnd below))
      && not (window_contains ~start ~len:wnd at_edge))

(* ---------------- Rtt ---------------- *)

let test_rtt_converges () =
  let r = Rtt.create ~min_rto_ns:1_000_000 ~max_rto_ns:60_000_000_000 in
  for _ = 1 to 50 do
    Rtt.observe r ~sample_ns:10_000_000
  done;
  check_int "srtt converges to sample" 10_000_000 (Rtt.srtt_ns r);
  check_bool "rto >= srtt" true (Rtt.rto_ns r >= 10_000_000)

let test_rtt_backoff () =
  let r = Rtt.create ~min_rto_ns:1_000_000 ~max_rto_ns:60_000_000_000 in
  Rtt.observe r ~sample_ns:5_000_000;
  let base = Rtt.rto_ns r in
  Rtt.backoff r;
  Rtt.backoff r;
  check_int "doubles twice" (4 * base) (Rtt.rto_ns r);
  Rtt.observe r ~sample_ns:5_000_000;
  check_bool "ack resets backoff" true (Rtt.rto_ns r < 4 * base)

let test_rtt_respects_min () =
  let r = Rtt.create ~min_rto_ns:200_000_000 ~max_rto_ns:60_000_000_000 in
  Rtt.observe r ~sample_ns:50_000 (* 50 us RTT *);
  check_int "Linux-style 200ms floor" 200_000_000 (Rtt.rto_ns r)

let test_rtt_max_cap () =
  (* During a long outage the exponential backoff must plateau at
     max_rto, not keep doubling toward a multi-minute timer. *)
  let r = Rtt.create ~min_rto_ns:1_000_000 ~max_rto_ns:8_000_000 in
  Rtt.observe r ~sample_ns:5_000_000;
  for _ = 1 to 10 do
    Rtt.backoff r
  done;
  check_int "backoff plateaus at max_rto" 8_000_000 (Rtt.rto_ns r);
  Rtt.backoff r;
  check_int "stays capped" 8_000_000 (Rtt.rto_ns r)

let test_rtt_reset_backoff () =
  (* Forward progress (a cumulative ACK) ends the backoff even when
     Karn's rule forbids taking an RTT sample from the retransmitted
     segment — the link healed, so the next timeout uses the base RTO. *)
  let r = Rtt.create ~min_rto_ns:1_000_000 ~max_rto_ns:60_000_000_000 in
  Rtt.observe r ~sample_ns:5_000_000;
  let base = Rtt.rto_ns r in
  for _ = 1 to 4 do
    Rtt.backoff r
  done;
  check_int "backed off 16x" (16 * base) (Rtt.rto_ns r);
  Rtt.reset_backoff r;
  check_int "heal returns rto to base" base (Rtt.rto_ns r)

(* ---------------- Congestion ---------------- *)

let test_congestion_slow_start_doubles () =
  let c = Congestion.create ~mss:1000 ~initial_window_segs:10 () in
  check_int "IW10" 10_000 (Congestion.cwnd c);
  Congestion.on_ack c ~acked_bytes:10_000 ~flight:0;
  check_int "doubled" 20_000 (Congestion.cwnd c)

let test_congestion_fast_retransmit_halves () =
  let c = Congestion.create ~mss:1000 ~initial_window_segs:10 () in
  Congestion.on_fast_retransmit c ~flight:20_000;
  check_bool "in recovery" true (Congestion.in_recovery c);
  check_int "ssthresh half of flight" 10_000 (Congestion.ssthresh c);
  Congestion.on_recovery_exit c;
  check_int "cwnd deflates to ssthresh" 10_000 (Congestion.cwnd c);
  check_bool "recovery exited" false (Congestion.in_recovery c)

let test_congestion_rto_collapses () =
  let c = Congestion.create ~mss:1000 ~initial_window_segs:10 () in
  Congestion.on_rto c;
  check_int "one segment" 1_000 (Congestion.cwnd c)

let test_congestion_avoidance_linear () =
  let c = Congestion.create ~mss:1000 ~initial_window_segs:4 () in
  Congestion.on_fast_retransmit c ~flight:8_000;
  Congestion.on_recovery_exit c;
  let w0 = Congestion.cwnd c in
  (* One full window of acks in avoidance grows cwnd by one MSS. *)
  Congestion.on_ack c ~acked_bytes:w0 ~flight:0;
  check_int "plus one mss" (w0 + 1000) (Congestion.cwnd c)

(* ---------------- Port allocation ---------------- *)

let test_port_alloc_respects_predicate () =
  let pa = Port_alloc.create ~lo:100 ~hi:200 () in
  let even p = p mod 2 = 0 in
  (match Port_alloc.alloc pa ~suitable:even with
  | Some p -> check_bool "even port" true (even p)
  | None -> Alcotest.fail "expected a port");
  check_int "in use" 1 (Port_alloc.in_use pa)

let test_port_alloc_exhaustion () =
  let pa = Port_alloc.create ~lo:10 ~hi:12 () in
  let p1 = Port_alloc.alloc pa ~suitable:(fun _ -> true) in
  let p2 = Port_alloc.alloc pa ~suitable:(fun _ -> true) in
  let p3 = Port_alloc.alloc pa ~suitable:(fun _ -> true) in
  check_bool "three allocated" true
    (Option.is_some p1 && Option.is_some p2 && Option.is_some p3);
  Alcotest.(check (option int)) "exhausted" None (Port_alloc.alloc pa ~suitable:(fun _ -> true));
  Port_alloc.free pa (Option.get p2);
  Alcotest.(check (option int)) "freed port reusable" p2 (Port_alloc.alloc pa ~suitable:(fun _ -> true))

(* ---------------- Connection lifecycle ---------------- *)

let test_handshake () =
  let net = make_net () in
  let _received, _ = sink_server net.b ~port:80 in
  let tcb, connected, _, _ =
    streaming_client net.a ~remote_ip:ip_b ~port:80 ~data:"" ()
  in
  run net ~ms:100;
  check_bool "client connected" true !connected;
  Alcotest.(check string) "established" "ESTABLISHED" (Tcp_state.to_string (Tcb.state tcb));
  check_int "server tracks one conn" 1 (Tcp_endpoint.connection_count net.b.ep)

let test_small_transfer () =
  let net = make_net () in
  let received, _ = sink_server net.b ~port:80 in
  let _ = streaming_client net.a ~remote_ip:ip_b ~port:80 ~data:"hello over tcp" () in
  run net ~ms:100;
  Alcotest.(check string) "payload delivered" "hello over tcp" (Buffer.contents received)

let test_multi_segment_transfer () =
  let net = make_net () in
  let received, _ = sink_server net.b ~port:80 in
  let data = String.init 50_000 (fun i -> Char.chr (i land 0xFF)) in
  let _, _, _, sent_acked = streaming_client net.a ~remote_ip:ip_b ~port:80 ~data () in
  run net ~ms:500;
  check_int "all bytes acked" 50_000 !sent_acked;
  Alcotest.(check string) "content integrity" data (Buffer.contents received)

let test_connection_refused () =
  let net = make_net () in
  (* No listener on port 81. *)
  let _, connected, refused, _ =
    streaming_client net.a ~remote_ip:ip_b ~port:81 ~data:"x" ()
  in
  run net ~ms:100;
  check_bool "refused" true !refused;
  check_bool "never connected" false !connected;
  check_bool "server sent RST" true (Tcp_endpoint.rsts_sent net.b.ep > 0)

let test_orderly_close () =
  let net = make_net () in
  let received, server_closed = sink_server net.b ~port:80 in
  let tcb, _, _, _ =
    streaming_client net.a ~remote_ip:ip_b ~port:80 ~data:"bye" ~close_when_done:true ()
  in
  run net ~ms:2000;
  Alcotest.(check string) "data before close" "bye" (Buffer.contents received);
  check_bool "server saw close" true !server_closed;
  Alcotest.(check string) "client fully closed" "CLOSED" (Tcp_state.to_string (Tcb.state tcb));
  check_int "no lingering server conns" 0 (Tcp_endpoint.connection_count net.b.ep)

let test_abort_sends_rst () =
  let net = make_net () in
  let _, server_closed = sink_server net.b ~port:80 in
  let tcb, connected, _, _ = streaming_client net.a ~remote_ip:ip_b ~port:80 ~data:"" () in
  run net ~ms:50;
  check_bool "connected first" true !connected;
  Tcp_conn.abort tcb;
  run net ~ms:100;
  check_bool "server learned of reset" true !server_closed;
  check_int "server table empty" 0 (Tcp_endpoint.connection_count net.b.ep);
  check_int "client table empty" 0 (Tcp_endpoint.connection_count net.a.ep)

let test_flow_control_zero_window () =
  (* Server never consumes: sender must stall at the receive buffer. *)
  let cfg = { Tcb.default_config with Tcb.rcv_buf = 8192 } in
  let net = make_net ~config:cfg () in
  let received, _ = sink_server ~consume:false net.b ~port:80 in
  let data = String.make 100_000 'z' in
  let _, _, _, sent_acked = streaming_client net.a ~remote_ip:ip_b ~port:80 ~data () in
  run net ~ms:300;
  check_bool "window bounds delivery" true (Buffer.length received <= 8192 + 1460);
  check_bool "some data flowed" true (Buffer.length received > 0);
  check_bool "sender stalled" true (!sent_acked < 100_000)

let test_window_reopens_after_consume () =
  let cfg = { Tcb.default_config with Tcb.rcv_buf = 8192 } in
  let net = make_net ~config:cfg () in
  let total_consumed = ref 0 in
  let server_tcb = ref None in
  Tcp_endpoint.listen net.b.ep ~port:80 ~on_accept:(fun tcb ->
      server_tcb := Some tcb;
      tcb.Tcb.callbacks.Tcb.on_recv <-
        (fun mbuf _off len ->
          (* Hold data; consume later in batches (recv_done). *)
          total_consumed := !total_consumed + len;
          Mbuf.decref mbuf));
  let data = String.make 60_000 'q' in
  let _, _, _, sent_acked = streaming_client net.a ~remote_ip:ip_b ~port:80 ~data () in
  (* Periodically release the window, like an application draining. *)
  let rec drain () =
    (match !server_tcb with
    | Some tcb -> Tcp_conn.consume tcb 4096
    | None -> ());
    ignore (Engine.Sim.after net.sim 500_000 drain)
  in
  ignore (Engine.Sim.after net.sim 500_000 drain);
  run net ~ms:1000;
  check_int "everything eventually acked" 60_000 !sent_acked

let test_transfer_under_loss () =
  let net = make_net ~loss:0.05 ~seed:3 () in
  let received, _ = sink_server net.b ~port:80 in
  let data = String.init 120_000 (fun i -> Char.chr ((i * 31) land 0xFF)) in
  let _ = streaming_client net.a ~remote_ip:ip_b ~port:80 ~data () in
  run net ~ms:5000;
  check_bool "losses occurred" true (net.drops > 0);
  Alcotest.(check string) "exactly-once in-order delivery" data (Buffer.contents received)

let test_retransmit_counted () =
  let net = make_net ~loss:0.2 ~seed:9 () in
  let received, _ = sink_server net.b ~port:80 in
  let data = String.make 20_000 'r' in
  let tcb, _, _, _ = streaming_client net.a ~remote_ip:ip_b ~port:80 ~data () in
  run net ~ms:10_000;
  Alcotest.(check string) "delivered despite 20% loss" data (Buffer.contents received);
  check_bool "retransmissions happened" true (Tcb.retransmits tcb > 0)

let test_survives_flap () =
  (* The wire goes fully down for 6 ms mid-transfer — shorter than the
     retransmission budget — then heals.  The connection must ride out
     the outage on RTO backoff and finish the transfer exactly once;
     a reset or a stall would show up as missing bytes. *)
  (* 40 us in: the handshake (3 x 10 us hops) is done and the transfer
     is mid-flight — well before 60 KB can complete on a 10 us wire. *)
  let down_start = 40_000 and down_end = 6_040_000 in
  let net =
    make_net ~wire_up:(fun now -> now < down_start || now >= down_end) ()
  in
  let received, _ = sink_server net.b ~port:80 in
  let data = String.init 60_000 (fun i -> Char.chr ((i * 17) land 0xFF)) in
  let tcb, _, refused, sent_acked =
    streaming_client net.a ~remote_ip:ip_b ~port:80 ~data ()
  in
  run net ~ms:5000;
  check_bool "the outage swallowed frames" true (net.drops > 0);
  check_bool "connect not refused" false !refused;
  check_int "everything acked after the heal" 60_000 !sent_acked;
  Alcotest.(check string) "exactly-once delivery across the flap" data
    (Buffer.contents received);
  check_bool "rode out the outage on retransmissions" true
    (Tcb.retransmits tcb > 0)

let test_bidirectional_echo () =
  let net = make_net () in
  (* Server echoes everything back. *)
  Tcp_endpoint.listen net.b.ep ~port:7 ~on_accept:(fun tcb ->
      tcb.Tcb.callbacks.Tcb.on_recv <-
        (fun mbuf off len ->
          let copy = Bytes.sub mbuf.Mbuf.buf off len in
          ignore (Tcp_conn.send tcb [ Iovec.of_bytes copy ]);
          Tcp_conn.consume tcb len;
          Mbuf.decref mbuf));
  let echoed = Buffer.create 64 in
  let tcb =
    Option.get (Tcp_endpoint.connect net.a.ep ~remote_ip:ip_b ~remote_port:7 ~cookie:1 ())
  in
  tcb.Tcb.callbacks.Tcb.on_connected <-
    (fun ok -> if ok then ignore (Tcp_conn.send tcb [ Iovec.of_string "marco!" ]));
  tcb.Tcb.callbacks.Tcb.on_recv <-
    (fun mbuf off len ->
      Buffer.add_subbytes echoed mbuf.Mbuf.buf off len;
      Tcp_conn.consume tcb len;
      Mbuf.decref mbuf);
  run net ~ms:100;
  Alcotest.(check string) "echo round trip" "marco!" (Buffer.contents echoed)

let test_rtt_measured () =
  let net = make_net ~delay_ns:50_000 () in
  let _ = sink_server net.b ~port:80 in
  let tcb, _, _, _ = streaming_client net.a ~remote_ip:ip_b ~port:80 ~data:(String.make 5000 'x') () in
  run net ~ms:200;
  let srtt = Tcb.srtt_ns tcb in
  check_bool "srtt near 2x one-way delay" true (srtt >= 100_000 && srtt < 400_000)

let test_half_close_server_can_still_send () =
  (* Client sends FIN; the server (CLOSE_WAIT) may still send data and
     the client must receive it (half-close semantics). *)
  let net = make_net () in
  let server_tcb = ref None in
  Tcp_endpoint.listen net.b.ep ~port:80 ~on_accept:(fun tcb ->
      server_tcb := Some tcb;
      tcb.Tcb.callbacks.Tcb.on_recv <-
        (fun mbuf _ len ->
          Tcp_conn.consume tcb len;
          Mbuf.decref mbuf));
  let got = Buffer.create 16 in
  let client =
    Option.get (Tcp_endpoint.connect net.a.ep ~remote_ip:ip_b ~remote_port:80 ~cookie:0 ())
  in
  client.Tcb.callbacks.Tcb.on_connected <-
    (fun ok -> if ok then Tcp_conn.close client);
  client.Tcb.callbacks.Tcb.on_recv <-
    (fun mbuf off len ->
      Buffer.add_subbytes got mbuf.Mbuf.buf off len;
      Tcp_conn.consume client len;
      Mbuf.decref mbuf);
  run net ~ms:50;
  (* Server is in CLOSE_WAIT now; send data on the half-open side. *)
  let tcb = Option.get !server_tcb in
  Alcotest.(check string) "server in close_wait" "CLOSE_WAIT"
    (Tcp_state.to_string (Tcb.state tcb));
  ignore (Tcp_conn.send tcb [ Iovec.of_string "parting gift" ]);
  run net ~ms:100;
  Alcotest.(check string) "client received post-FIN data" "parting gift"
    (Buffer.contents got);
  (* Server closes its side; everything tears down. *)
  Tcp_conn.close tcb;
  run net ~ms:3000;
  check_int "server table empty" 0 (Tcp_endpoint.connection_count net.b.ep);
  check_int "client table empty" 0 (Tcp_endpoint.connection_count net.a.ep)

let test_simultaneous_close () =
  let net = make_net () in
  let server_tcb = ref None in
  Tcp_endpoint.listen net.b.ep ~port:80 ~on_accept:(fun tcb -> server_tcb := Some tcb);
  let client =
    Option.get (Tcp_endpoint.connect net.a.ep ~remote_ip:ip_b ~remote_port:80 ~cookie:0 ())
  in
  run net ~ms:50;
  (* Both ends close in the same instant: FINs cross on the wire. *)
  Tcp_conn.close client;
  Tcp_conn.close (Option.get !server_tcb);
  run net ~ms:3000;
  Alcotest.(check string) "client closed" "CLOSED" (Tcp_state.to_string (Tcb.state client));
  check_int "no lingering flows" 0
    (Tcp_endpoint.connection_count net.a.ep + Tcp_endpoint.connection_count net.b.ep)

let test_mss_negotiation_clamps_segments () =
  (* Server advertises a small MSS; the client must never send larger
     segments.  Observable through segment counts: 5000 bytes over a
     536-byte MSS needs at least 10 data segments. *)
  let small = { Tcb.default_config with Tcb.mss = 536 } in
  let sim = Engine.Sim.create ~seed:3 () in
  ignore sim;
  let net = make_net ~config:small () in
  let received, _ = sink_server net.b ~port:80 in
  let tcb, _, _, _ =
    streaming_client net.a ~remote_ip:ip_b ~port:80 ~data:(String.make 5_000 'm') ()
  in
  run net ~ms:200;
  check_int "delivered" 5_000 (Buffer.length received);
  check_bool "segment count respects MSS" true (Tcb.segs_out tcb >= 10)

let test_ooo_flood_recovers () =
  (* Heavy reordering-by-loss: more OOO segments than the 64-entry
     bound; retransmission must still complete the byte stream. *)
  let net = make_net ~loss:0.3 ~seed:21 () in
  let received, _ = sink_server net.b ~port:80 in
  let data = String.init 60_000 (fun i -> Char.chr ((i * 7) land 0xFF)) in
  let _ = streaming_client net.a ~remote_ip:ip_b ~port:80 ~data () in
  run net ~ms:30_000;
  Alcotest.(check string) "in-order exactly-once despite 30% loss" data
    (Buffer.contents received)

let test_listener_teardown_refuses () =
  let net = make_net () in
  let _ = sink_server net.b ~port:80 in
  Tcp_endpoint.unlisten net.b.ep ~port:80;
  let _, connected, refused, _ =
    streaming_client net.a ~remote_ip:ip_b ~port:80 ~data:"x" ()
  in
  run net ~ms:100;
  check_bool "refused after unlisten" true !refused;
  check_bool "not connected" false !connected

(* ---------------- Properties ---------------- *)

let transfer_roundtrip ~loss ~size ~seed =
  let net = make_net ~loss ~seed () in
  let received, _ = sink_server net.b ~port:80 in
  let data = String.init size (fun i -> Char.chr ((i * 131) land 0xFF)) in
  let _ = streaming_client net.a ~remote_ip:ip_b ~port:80 ~data () in
  run net ~ms:20_000;
  Buffer.contents received = data

(* --- flow table ----------------------------------------------------- *)

(* One env (hence one SoA store) per test: the flow table stores
   handles into its endpoint's store. *)
let make_tcb_env () =
  Tcb.make_env
    ~now:(fun () -> 0)
    ~wheel:(Wheel.create ~now:0 ())
    ~alloc:(fun () -> None)
    ~output:(fun _ _ -> ())
    ~rng:(Engine.Rng.create ~seed:7) ~handle_alloc:(ref 0) ()

let make_tcb env ~local_port ~remote_ip ~remote_port =
  Tcb.create env Tcb.default_config ~local_ip:ip_a ~local_port ~remote_ip
    ~remote_port ~cookie:0

let test_flow_table_high_local_port () =
  (* Regression: the old single-int key packed local_port lsl 48 into a
     63-bit int, so any local port with bit 15 set (>= 0x8000) spilled
     into the sign bit and aliased local_port land 0x7FFF for the same
     remote endpoint. *)
  let env = make_tcb_env () in
  let ft = Flow_table.create ~store:env.Tcb.store in
  let remote_ip = ip_b and remote_port = 7777 in
  let hi = make_tcb env ~local_port:0x8000 ~remote_ip ~remote_port in
  let lo = make_tcb env ~local_port:0x0000 ~remote_ip ~remote_port in
  Flow_table.add ft ~local_port:0x8000 ~remote_ip ~remote_port hi;
  Flow_table.add ft ~local_port:0x0000 ~remote_ip ~remote_port lo;
  check_int "two distinct flows" 2 (Flow_table.count ft);
  (match Flow_table.find ft ~local_port:0x8000 ~remote_ip ~remote_port with
  | Some t -> check_int "port 0x8000 finds its own tcb" (Tcb.handle hi) (Tcb.handle t)
  | None -> Alcotest.fail "port 0x8000 flow missing");
  (match Flow_table.find ft ~local_port:0x0000 ~remote_ip ~remote_port with
  | Some t -> check_int "port 0x0000 finds its own tcb" (Tcb.handle lo) (Tcb.handle t)
  | None -> Alcotest.fail "port 0x0000 flow missing");
  Flow_table.remove ft ~local_port:0x8000 ~remote_ip ~remote_port;
  check_int "only the high-port flow removed" 1 (Flow_table.count ft);
  check_bool "high-port flow gone" true
    (Flow_table.find ft ~local_port:0x8000 ~remote_ip ~remote_port = None);
  check_bool "low-port flow survives" true
    (Flow_table.find ft ~local_port:0x0000 ~remote_ip ~remote_port <> None)

let test_flow_table_growth_and_tombstones () =
  (* Push the open-addressing table through several resizes with
     interleaved removals, then verify every surviving flow resolves. *)
  let env = make_tcb_env () in
  let ft = Flow_table.create ~store:env.Tcb.store in
  let tcbs = Hashtbl.create 64 in
  for i = 0 to 4_999 do
    let local_port = 0x8000 lor (i land 0x7FFF) in
    let remote_ip = Ixnet.Ip_addr.of_octets 10 1 (i lsr 8) (i land 0xFF) in
    let remote_port = 1000 + (i mod 50) in
    let tcb = make_tcb env ~local_port ~remote_ip ~remote_port in
    Flow_table.add ft ~local_port ~remote_ip ~remote_port tcb;
    Hashtbl.replace tcbs i (local_port, remote_ip, remote_port, tcb)
  done;
  for i = 0 to 4_999 do
    if i mod 3 = 0 then begin
      let local_port, remote_ip, remote_port, _ = Hashtbl.find tcbs i in
      Flow_table.remove ft ~local_port ~remote_ip ~remote_port;
      Hashtbl.remove tcbs i
    end
  done;
  check_int "count tracks removals" (Hashtbl.length tcbs) (Flow_table.count ft);
  Hashtbl.iter
    (fun _ (local_port, remote_ip, remote_port, tcb) ->
      match Flow_table.find ft ~local_port ~remote_ip ~remote_port with
      | Some t ->
          if Tcb.handle t <> Tcb.handle tcb then
            Alcotest.fail "lookup returned the wrong tcb"
      | None -> Alcotest.fail "surviving flow missing after growth")
    tcbs;
  let seen = ref 0 in
  Flow_table.iter ft (fun _ -> incr seen);
  check_int "iter visits each live flow once" (Hashtbl.length tcbs) !seen

let prop_exactly_once_under_loss =
  QCheck.Test.make ~name:"exactly-once in-order delivery under random loss" ~count:15
    QCheck.(pair (int_bound 120) (int_bound 1000))
    (fun (loss_pct_tenths, seed) ->
      let loss = float_of_int loss_pct_tenths /. 1000. in
      transfer_roundtrip ~loss ~size:15_000 ~seed:(seed + 1))

let prop_sizes_roundtrip =
  QCheck.Test.make ~name:"transfers of arbitrary sizes roundtrip" ~count:20
    QCheck.(int_range 1 100_000)
    (fun size -> transfer_roundtrip ~loss:0. ~size ~seed:2)

(* ---------------- hostile-peer hardening ---------------- *)

(* Hand-inject one crafted segment into an endpoint, bypassing the
   wire (the mbuf carries no payload; flags come pre-set). *)
let inject host ~src_ip ~src_port ~dst_port ~seq ~ack ?(syn = false)
    ?(ack_flag = false) ?(rst = false) () =
  let mbuf = Mbuf.create () in
  let s = Seg.scratch () in
  s.Seg.src_port <- src_port;
  s.Seg.dst_port <- dst_port;
  s.Seg.seq <- seq;
  s.Seg.ack <- ack;
  s.Seg.syn <- syn;
  s.Seg.ack_flag <- ack_flag;
  s.Seg.fin <- false;
  s.Seg.rst <- rst;
  s.Seg.psh <- false;
  s.Seg.ece <- false;
  s.Seg.cwr <- false;
  s.Seg.window <- 65535;
  s.Seg.mss <- None;
  s.Seg.wscale <- None;
  s.Seg.sack <- None;
  s.Seg.payload_off <- mbuf.Mbuf.off;
  s.Seg.payload_len <- 0;
  Tcp_endpoint.rx_segment host.ep ~src_ip s mbuf;
  Mbuf.decref mbuf

let test_challenge_ack_rate_limit () =
  let net = make_net () in
  let received, _ = sink_server net.b ~port:80 in
  let tcb, connected, _, _ =
    streaming_client net.a ~remote_ip:ip_b ~port:80 ~data:"" ()
  in
  run net ~ms:50;
  check_bool "connected" true !connected;
  let lp = Tcb.local_port tcb and rp = Tcb.remote_port tcb in
  let rcv_nxt = Tcb.rcv_nxt tcb in
  (* RST flood: in-window but not rcv_nxt-exact sequence numbers, all
     inside one challenge-ACK rate window (no simulated time passes). *)
  let flood = 20 in
  for i = 1 to flood do
    inject net.a ~src_ip:ip_b ~src_port:rp ~dst_port:lp
      ~seq:(Seqno.add rcv_nxt (1 + (i mod 7)))
      ~ack:0 ~rst:true ()
  done;
  let limit = Tcb.default_config.Tcb.challenge_ack_limit in
  check_int "challenge ACKs capped at the configured limit" limit
    (Tcp_endpoint.challenge_acks_sent net.a.ep);
  check_int "every suppressed challenge is counted" (flood - limit)
    (Tcp_endpoint.challenge_acks_limited net.a.ep);
  check_int "no forged RST tore the connection down" 0
    (Tcp_endpoint.rsts_accepted net.a.ep);
  Alcotest.(check string)
    "connection survives the flood" "ESTABLISHED"
    (Tcp_state.to_string (Tcb.state tcb));
  (* ...and still carries data afterwards *)
  let msg = "still alive after the flood" in
  let sent =
    Tcp_conn.send_iov tcb
      { Iovec.buf = Bytes.of_string msg; off = 0; len = String.length msg }
  in
  check_int "post-flood send accepted" (String.length msg) sent;
  run net ~ms:100;
  Alcotest.(check string) "post-flood data delivered" msg
    (Buffer.contents received)

let test_rfc1337_in_tcb_time_wait () =
  (* Classic in-TCB TIME_WAIT (tw_recycle off), held long enough to
     attack: an exact-sequence RST must be ignored, not assassinate. *)
  let cfg =
    {
      Tcb.default_config with
      tw_recycle = false;
      time_wait_ns = 10_000_000_000;
    }
  in
  let net = make_net ~config:cfg () in
  let _ = sink_server net.b ~port:80 in
  let tcb, _, _, _ =
    streaming_client net.a ~remote_ip:ip_b ~port:80 ~data:"x"
      ~close_when_done:true ()
  in
  run net ~ms:500;
  Alcotest.(check string)
    "active closer parked in TIME_WAIT" "TIME_WAIT"
    (Tcp_state.to_string (Tcb.state tcb));
  let lp = Tcb.local_port tcb and rp = Tcb.remote_port tcb in
  inject net.a ~src_ip:ip_b ~src_port:rp ~dst_port:lp ~seq:(Tcb.rcv_nxt tcb)
    ~ack:0 ~rst:true ();
  check_int "RST dropped per RFC 1337" 1 (Tcp_endpoint.tw_rst_dropped net.a.ep);
  Alcotest.(check string)
    "TIME_WAIT survives the assassination attempt" "TIME_WAIT"
    (Tcp_state.to_string (Tcb.state tcb))

let test_rfc1337_tw_table_remnant () =
  (* Recycled TIME_WAIT (compact Tw_table remnant, no TCB): same
     protection, same counter. *)
  let cfg =
    { Tcb.default_config with tw_recycle = true; time_wait_ns = 10_000_000_000 }
  in
  let net = make_net ~config:cfg () in
  let _ = sink_server net.b ~port:80 in
  let tcb, _, _, _ =
    streaming_client net.a ~remote_ip:ip_b ~port:80 ~data:"x"
      ~close_when_done:true ()
  in
  (* capture the tuple before the sim runs: the recycled TIME_WAIT
     releases the TCB, after which its slot must not be read *)
  let lp = Tcb.local_port tcb and rp = Tcb.remote_port tcb in
  run net ~ms:500;
  check_int "remnant recorded" 1 (Tcp_endpoint.time_wait_count net.a.ep);
  inject net.a ~src_ip:ip_b ~src_port:rp ~dst_port:lp ~seq:0 ~ack:0 ~rst:true
    ();
  check_int "remnant RST dropped per RFC 1337" 1
    (Tcp_endpoint.tw_rst_dropped net.a.ep);
  check_int "remnant survives" 1 (Tcp_endpoint.time_wait_count net.a.ep)

let test_port_free_is_counted_once () =
  (* Regression for the port double-free: releasing the same port twice
     must not corrupt the free list, and the guard must count it. *)
  let pa = Port_alloc.create ~lo:50000 ~hi:50003 () in
  let p1 = Option.get (Port_alloc.alloc pa ~suitable:(fun _ -> true)) in
  let p2 = Option.get (Port_alloc.alloc pa ~suitable:(fun _ -> true)) in
  check_int "two ports in use" 2 (Port_alloc.in_use pa);
  Port_alloc.free pa p1;
  check_int "clean free is not a double free" 0 (Port_alloc.double_frees pa);
  Port_alloc.free pa p1;
  check_int "second free of the same port is counted" 1
    (Port_alloc.double_frees pa);
  check_int "in_use not corrupted by the double free" 1
    (Port_alloc.in_use pa);
  (* the freed port must come back exactly once: draining the pool
     yields each port at most once *)
  let drained = ref [] in
  let rec drain () =
    match Port_alloc.alloc pa ~suitable:(fun _ -> true) with
    | Some p ->
        check_bool "no port handed out twice" false (List.mem p !drained);
        drained := p :: !drained;
        drain ()
    | None -> ()
  in
  drain ();
  check_bool "p2 still reserved" false (List.mem p2 !drained)

let test_endpoint_lifecycle_no_double_free () =
  (* Full lifecycle (connect, transfer, orderly close, TIME_WAIT
     recycle) ends with every port back exactly once. *)
  let net = make_net () in
  let _ = sink_server net.b ~port:80 in
  let _ =
    streaming_client net.a ~remote_ip:ip_b ~port:80 ~data:"bye"
      ~close_when_done:true ()
  in
  run net ~ms:2000;
  check_int "no double frees on the client" 0
    (Tcp_endpoint.port_double_frees net.a.ep);
  check_int "no double frees on the server" 0
    (Tcp_endpoint.port_double_frees net.b.ep);
  check_int "client ports all returned" 0 (Tcp_endpoint.ports_in_use net.a.ep)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "tcp"
    [
      ( "seqno",
        [
          Alcotest.test_case "wraparound" `Quick test_seqno_wraparound;
          qt prop_seqno_ordering_antisymmetric;
          qt prop_seqno_add_orders_across_wrap;
          qt prop_seqno_le_reflexive_antisymmetric;
          qt prop_seqno_window_contains;
        ] );
      ( "rtt",
        [
          Alcotest.test_case "converges" `Quick test_rtt_converges;
          Alcotest.test_case "backoff" `Quick test_rtt_backoff;
          Alcotest.test_case "min rto floor" `Quick test_rtt_respects_min;
          Alcotest.test_case "max rto cap" `Quick test_rtt_max_cap;
          Alcotest.test_case "reset backoff on heal" `Quick test_rtt_reset_backoff;
        ] );
      ( "congestion",
        [
          Alcotest.test_case "slow start" `Quick test_congestion_slow_start_doubles;
          Alcotest.test_case "fast retransmit" `Quick test_congestion_fast_retransmit_halves;
          Alcotest.test_case "rto collapse" `Quick test_congestion_rto_collapses;
          Alcotest.test_case "avoidance linear" `Quick test_congestion_avoidance_linear;
        ] );
      ( "ports",
        [
          Alcotest.test_case "predicate" `Quick test_port_alloc_respects_predicate;
          Alcotest.test_case "exhaustion" `Quick test_port_alloc_exhaustion;
        ] );
      ( "flow_table",
        [
          Alcotest.test_case "high local port no collision" `Quick
            test_flow_table_high_local_port;
          Alcotest.test_case "growth and tombstones" `Quick
            test_flow_table_growth_and_tombstones;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "handshake" `Quick test_handshake;
          Alcotest.test_case "small transfer" `Quick test_small_transfer;
          Alcotest.test_case "multi segment transfer" `Quick test_multi_segment_transfer;
          Alcotest.test_case "connection refused" `Quick test_connection_refused;
          Alcotest.test_case "orderly close" `Quick test_orderly_close;
          Alcotest.test_case "abort / RST" `Quick test_abort_sends_rst;
          Alcotest.test_case "bidirectional echo" `Quick test_bidirectional_echo;
          Alcotest.test_case "rtt measurement" `Quick test_rtt_measured;
          Alcotest.test_case "half close" `Quick test_half_close_server_can_still_send;
          Alcotest.test_case "simultaneous close" `Quick test_simultaneous_close;
          Alcotest.test_case "mss clamping" `Quick test_mss_negotiation_clamps_segments;
          Alcotest.test_case "unlisten refuses" `Quick test_listener_teardown_refuses;
        ] );
      ( "flow_control",
        [
          Alcotest.test_case "zero window stalls sender" `Quick test_flow_control_zero_window;
          Alcotest.test_case "window reopens on consume" `Quick test_window_reopens_after_consume;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "transfer under 5% loss" `Quick test_transfer_under_loss;
          Alcotest.test_case "retransmits under 20% loss" `Quick test_retransmit_counted;
          Alcotest.test_case "ooo flood under 30% loss" `Quick test_ooo_flood_recovers;
          Alcotest.test_case "survives a 6ms link flap" `Quick test_survives_flap;
          qt prop_exactly_once_under_loss;
          qt prop_sizes_roundtrip;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "challenge-ACK rate limit under RST flood"
            `Quick test_challenge_ack_rate_limit;
          Alcotest.test_case "RFC 1337, in-TCB TIME_WAIT" `Quick
            test_rfc1337_in_tcb_time_wait;
          Alcotest.test_case "RFC 1337, recycled remnant" `Quick
            test_rfc1337_tw_table_remnant;
          Alcotest.test_case "port double-free guard" `Quick
            test_port_free_is_counted_once;
          Alcotest.test_case "lifecycle frees each port once" `Quick
            test_endpoint_lifecycle_no_double_free;
        ] );
    ]
