(* The parallel harness's determinism invariant: fanning a figure's
   independent data points over a domain pool (jobs=4) must produce
   bit-identical results to the sequential path (jobs=1) — same seeds,
   same points, same order.  Runs reduced slices of fig2/fig4/fig5 both
   ways and compares with structural equality at full float precision.

   [Stdlib.compare x y = 0] rather than [=]: netpipe points carry NaN
   when a transfer misses the horizon, and NaN <> NaN would mask a real
   comparison. *)

module E = Harness.Experiments

(* Tiny windows: this test is about equality, not model fidelity. *)
let () = Unix.putenv "IX_BENCH_SCALE" "0.05"

let check_bool = Alcotest.(check bool)

let bit_identical what a b =
  check_bool (what ^ ": parallel run bit-identical to sequential") true
    (Stdlib.compare a b = 0)

let test_fig2 () =
  let sizes = [ 1_024; 16_384 ] in
  let seq = E.fig2 ~jobs:1 ~sizes () in
  let par = E.fig2 ~jobs:4 ~sizes () in
  bit_identical "fig2" seq par

let test_fig4 () =
  let conn_counts = [ 100; 1_000 ] in
  let seq = E.fig4 ~jobs:1 ~conn_counts () in
  let par = E.fig4 ~jobs:4 ~conn_counts () in
  bit_identical "fig4" seq par

let test_fig5 () =
  let targets = [ 100e3 ] and profiles = [ Workloads.Size_dist.usr ] in
  let seq = E.fig5 ~jobs:1 ~targets ~profiles () in
  let par = E.fig5 ~jobs:4 ~targets ~profiles () in
  bit_identical "fig5" seq par

let test_perf_slices () =
  (* The bench perf harness's own invariant, in miniature: the metric
     snapshots of the perf slices must not depend on whether the slices
     run sequentially or concurrently on separate domains. *)
  let slices =
    [
      (fun () -> (E.perf_fig2_slice ~sizes:[ 1_024 ] ()).E.perf_snapshot);
      (fun () -> (E.perf_fig4_slice ~conns:1_000 ()).E.perf_snapshot);
    ]
  in
  let seq = List.map (fun f -> f ()) slices in
  let par = Engine.Domain_pool.map_jobs ~jobs:2 slices in
  bit_identical "perf snapshots" seq par

let () =
  Alcotest.run "determinism"
    [
      ( "parallel-vs-sequential",
        [
          Alcotest.test_case "fig2 reduced slice" `Quick test_fig2;
          Alcotest.test_case "fig4 reduced slice" `Quick test_fig4;
          Alcotest.test_case "fig5 reduced slice" `Quick test_fig5;
          Alcotest.test_case "perf slice snapshots" `Quick test_perf_slices;
        ] );
    ]
