(* Trend tests: small-scale versions of the paper's headline claims.
   These run the real experiment harness with short windows (via
   IX_BENCH_SCALE) and assert orderings and rough factors rather than
   absolute numbers — the same fidelity targets DESIGN.md commits to. *)

module Cluster = Harness.Cluster
module E = Harness.Experiments

let () = Unix.putenv "IX_BENCH_SCALE" "0.25"

let check_bool = Alcotest.(check bool)

let echo kind ports cores n =
  (E.run_echo ~kind ~ports ~cores ~msg_size:64 ~msgs_per_conn:n ()).E.msgs_per_sec

(* §5.3: at high n, IX > mTCP > Linux in message rate. *)
let test_throughput_ordering () =
  let ix = echo Cluster.Ix 1 8 128 in
  let mtcp = echo Cluster.Mtcp 1 8 128 in
  let linux = echo Cluster.Linux 1 8 128 in
  check_bool "ix beats mtcp" true (ix > mtcp);
  check_bool "mtcp beats linux" true (mtcp > linux);
  check_bool "ix >= 1.5x mtcp" true (ix > 1.5 *. mtcp);
  check_bool "ix >= 5x linux" true (ix > 5. *. linux)

(* §5.3: IX approaches the 10GbE line rate for 64B messages (8.8M/s). *)
let test_ix_line_rate () =
  let ix = echo Cluster.Ix 1 8 512 in
  check_bool "within 15% of line rate" true (ix > 7.5e6)

(* §5.3: IX saturates 10GbE with few cores — adding cores beyond ~4
   brings little at n=1 because the wire is the limit. *)
let test_ix_early_saturation () =
  let three = echo Cluster.Ix 1 3 1 in
  let eight = echo Cluster.Ix 1 8 1 in
  check_bool "3 cores already near the 8-core rate" true (three > 0.6 *. eight)

(* §5.3: 4x10GbE scales IX beyond a single port. *)
let test_ix_40g_scaling () =
  let one = echo Cluster.Ix 1 8 512 in
  let four = echo Cluster.Ix 4 8 512 in
  check_bool "bonding adds capacity" true (four > 1.2 *. one)

(* §5.2: unloaded one-way latency ordering (IX < Linux < mTCP). *)
let test_latency_ordering () =
  let ix = (E.netpipe_once ~kind:Cluster.Ix ~size:64 ()).E.one_way_us in
  let linux = (E.netpipe_once ~kind:Cluster.Linux ~size:64 ()).E.one_way_us in
  let mtcp = (E.netpipe_once ~kind:Cluster.Mtcp ~size:64 ()).E.one_way_us in
  check_bool "ix < linux" true (ix < linux);
  check_bool "linux < mtcp" true (linux < mtcp);
  check_bool "ix at least 2.5x better than linux" true (linux > 2.5 *. ix);
  check_bool "mtcp an order of magnitude worse than ix" true (mtcp > 8. *. ix)

(* §6 / Fig. 6: larger batch bounds raise saturated throughput. *)
let echo_with_bound batch =
  (E.run_echo ~batch_bound:batch ~kind:Cluster.Ix ~ports:1 ~cores:4 ~msg_size:64
     ~msgs_per_conn:64 ())
    .E.msgs_per_sec

let test_batch_bound () =
  let b1 = echo_with_bound 1 in
  let b64 = echo_with_bound 64 in
  check_bool "B=64 beats B=1 at saturation" true (b64 > 1.15 *. b1)

(* §5.5: memcached on IX sustains more load at low latency than Linux. *)
let test_memcached_gap () =
  let profile = Workloads.Size_dist.usr in
  let ix, ix_kernel =
    E.run_memcached ~kind:Cluster.Ix ~server_threads:6 ~profile ~target_rps:500e3 ()
  in
  let linux, linux_kernel =
    E.run_memcached ~kind:Cluster.Linux ~server_threads:8 ~profile ~target_rps:500e3 ()
  in
  check_bool "both achieve the moderate target" true
    (ix.Workloads.Mutilate.achieved_rps > 400e3
    && linux.Workloads.Mutilate.achieved_rps > 400e3);
  check_bool "ix p99 well below linux p99" true
    (ix.Workloads.Mutilate.p99_us *. 2. < linux.Workloads.Mutilate.p99_us);
  check_bool "linux mostly kernel time" true (linux_kernel > 0.6);
  check_bool "ix mostly application time" true (ix_kernel < 0.5)

(* §5.4: throughput falls once connection state outgrows the L3. *)
let test_connection_count_decline () =
  let peak = E.run_connection_scaling ~kind:Cluster.Ix ~conns:1_000 ~workers:384 () in
  let big = E.run_connection_scaling ~kind:Cluster.Ix ~conns:100_000 ~workers:384 () in
  check_bool "decline at high connection counts" true (big < 0.85 *. peak);
  check_bool "but still a large fraction of peak" true (big > 0.3 *. peak)

let () =
  Alcotest.run "trends"
    [
      ( "echo",
        [
          Alcotest.test_case "throughput ordering" `Slow test_throughput_ordering;
          Alcotest.test_case "ix line rate" `Slow test_ix_line_rate;
          Alcotest.test_case "early core saturation" `Slow test_ix_early_saturation;
          Alcotest.test_case "4x10GbE scaling" `Slow test_ix_40g_scaling;
        ] );
      ("netpipe", [ Alcotest.test_case "latency ordering" `Slow test_latency_ordering ]);
      ("batching", [ Alcotest.test_case "B sweep" `Slow test_batch_bound ]);
      ("memcached", [ Alcotest.test_case "ix vs linux" `Slow test_memcached_gap ]);
      ( "connections",
        [ Alcotest.test_case "L3 decline" `Slow test_connection_count_decline ] );
    ]
