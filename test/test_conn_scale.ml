(* Million-connection scale tests (ISSUE 7): SoA store + flow table
   model checking, TIME_WAIT remnant table behaviour, timer-wheel
   capacity at 1M armed timers, and the conn-scale churn workload. *)

module Wheel = Timerwheel.Timer_wheel
module Tcb = Ixtcp.Tcb
module Flow_table = Ixtcp.Flow_table
module Tw_table = Ixtcp.Tw_table
module Conn_scale = Workloads.Conn_scale

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let make_env ?store () =
  let wheel = Wheel.create ~now:0 () in
  Tcb.make_env
    ~now:(fun () -> 0)
    ~wheel
    ~alloc:(fun () -> None)
    ~output:(fun _ _ -> ())
    ~rng:(Engine.Rng.create ~seed:7)
    ~handle_alloc:(ref 0) ?store ()

let make_tcb env ~local_port ~remote_ip ~remote_port =
  Tcb.create env Tcb.default_config ~local_ip:1 ~local_port ~remote_ip
    ~remote_port ~cookie:0

(* ------------------------------------------------------------------ *)
(* SoA store + flow table vs a naive map                               *)

(* Random op sequences over a small key space, executed against both
   the open-addressing flow table (generation-checked handles into the
   SoA store) and a Hashtbl model.  Lookup results, counts and
   iteration contents must agree at every step. *)
let prop_flow_table_matches_model =
  let open QCheck in
  (* op: 0 = add, 1 = remove, 2 = find; key drawn from 16 tuples *)
  let op = Gen.(pair (int_range 0 2) (int_range 0 15)) in
  Test.make ~name:"flow table matches naive map under random ops" ~count:200
    (make Gen.(list_size (int_range 1 200) op))
    (fun ops ->
      let store = Tcb.store_create ~initial:4 () in
      let env = make_env ~store () in
      let table = Flow_table.create ~store in
      let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let key_of k = (1000 + (k land 3), 0xA000000 + (k lsr 2), 2000 + k) in
      let uid = ref 0 in
      List.for_all
        (fun (op, k) ->
          let local_port, remote_ip, remote_port = key_of k in
          (match op with
          | 0 ->
              if not (Hashtbl.mem model k) then begin
                let tcb = make_tcb env ~local_port ~remote_ip ~remote_port in
                incr uid;
                Tcb.set_cookie tcb !uid;
                Flow_table.add table ~local_port ~remote_ip ~remote_port tcb;
                Hashtbl.replace model k !uid
              end
          | 1 ->
              Flow_table.remove table ~local_port ~remote_ip ~remote_port;
              Hashtbl.remove model k
          | _ -> ());
          let found =
            match Flow_table.find table ~local_port ~remote_ip ~remote_port with
            | Some tcb -> Some (Tcb.cookie tcb)
            | None -> None
          in
          found = Hashtbl.find_opt model k
          && Flow_table.count table = Hashtbl.length model)
        ops)

let test_store_grows () =
  let store = Tcb.store_create ~initial:2 () in
  let env = make_env ~store () in
  let table = Flow_table.create ~store in
  let n = 1000 in
  for i = 0 to n - 1 do
    let tcb =
      make_tcb env ~local_port:80 ~remote_ip:(0xB000000 + i) ~remote_port:5000
    in
    Tcb.set_cookie tcb i;
    Flow_table.add table ~local_port:80 ~remote_ip:(0xB000000 + i)
      ~remote_port:5000 tcb
  done;
  check_int "all live" n (Tcb.store_live store);
  check_bool "capacity grew" true (Tcb.store_capacity store >= n);
  (* Spot-check lookups after the column arrays were reallocated. *)
  for i = 0 to n - 1 do
    match
      Flow_table.find table ~local_port:80 ~remote_ip:(0xB000000 + i)
        ~remote_port:5000
    with
    | Some tcb -> assert (Tcb.cookie tcb = i)
    | None -> Alcotest.failf "lost connection %d after growth" i
  done

(* ------------------------------------------------------------------ *)
(* TIME_WAIT remnant table                                             *)

let test_tw_collisions () =
  let tw = Tw_table.create () in
  (* Many tuples that differ only in remote port — whatever the hash,
     open addressing must keep them all distinct. *)
  let n = 257 in
  for i = 0 to n - 1 do
    Tw_table.add tw ~local_port:80 ~remote_ip:0xC0A80001 ~remote_port:(1000 + i)
      ~snd_nxt:(100 + i) ~rcv_nxt:(200 + i) ~deadline:1_000_000
  done;
  check_int "all resident" n (Tw_table.count tw);
  for i = 0 to n - 1 do
    let slot =
      Tw_table.find_slot tw ~now:0 ~local_port:80 ~remote_ip:0xC0A80001
        ~remote_port:(1000 + i)
    in
    check_bool "found" true (slot >= 0);
    check_int "right snd_nxt" (100 + i) (Tw_table.fin_snd_nxt tw slot);
    check_int "right rcv_nxt" (200 + i) (Tw_table.fin_rcv_nxt tw slot)
  done;
  (* Same tuple re-added replaces, not duplicates. *)
  Tw_table.add tw ~local_port:80 ~remote_ip:0xC0A80001 ~remote_port:1000
    ~snd_nxt:999 ~rcv_nxt:888 ~deadline:1_000_000;
  check_int "replace not duplicate" n (Tw_table.count tw);
  let slot =
    Tw_table.find_slot tw ~now:0 ~local_port:80 ~remote_ip:0xC0A80001
      ~remote_port:1000
  in
  check_int "replaced snd_nxt" 999 (Tw_table.fin_snd_nxt tw slot)

let test_tw_expiry () =
  let tw = Tw_table.create () in
  Tw_table.add tw ~local_port:80 ~remote_ip:1 ~remote_port:1 ~snd_nxt:1
    ~rcv_nxt:1 ~deadline:100;
  Tw_table.add tw ~local_port:80 ~remote_ip:1 ~remote_port:2 ~snd_nxt:2
    ~rcv_nxt:2 ~deadline:300;
  check_bool "live before deadline" true
    (Tw_table.find_slot tw ~now:50 ~local_port:80 ~remote_ip:1 ~remote_port:1
    >= 0);
  (* Lazy expiry: a lookup past the deadline misses (and reaps). *)
  check_int "expired is a miss" (-1)
    (Tw_table.find_slot tw ~now:200 ~local_port:80 ~remote_ip:1 ~remote_port:1);
  check_bool "later deadline still live" true
    (Tw_table.find_slot tw ~now:200 ~local_port:80 ~remote_ip:1 ~remote_port:2
    >= 0);
  (* Sweep reaps everything expired. *)
  let reaped = Tw_table.sweep tw ~now:1_000 in
  check_int "sweep reaped the rest" 1 reaped;
  check_int "empty" 0 (Tw_table.count tw)

let test_tw_refresh () =
  let tw = Tw_table.create () in
  Tw_table.add tw ~local_port:80 ~remote_ip:9 ~remote_port:9 ~snd_nxt:5
    ~rcv_nxt:6 ~deadline:100;
  let slot =
    Tw_table.find_slot tw ~now:0 ~local_port:80 ~remote_ip:9 ~remote_port:9
  in
  Tw_table.refresh tw slot ~deadline:500;
  check_bool "refreshed deadline holds" true
    (Tw_table.find_slot tw ~now:400 ~local_port:80 ~remote_ip:9 ~remote_port:9
    >= 0)

(* ------------------------------------------------------------------ *)
(* Timer wheel at 1M armed timers                                      *)

let million = 1_000_000

let test_wheel_million_fire () =
  let w = Wheel.create ~now:0 () in
  let tick = Wheel.default_tick_ns in
  let fired = ref 0 in
  for i = 0 to million - 1 do
    (* Spread over ~65k ticks so every level of the hierarchy holds
       timers and cascades run. *)
    ignore
      (Wheel.schedule w
         ~deadline:((1 + (i mod 65_536)) * tick)
         (fun () -> incr fired))
  done;
  let s = Wheel.stats w in
  check_int "all armed" million s.Wheel.armed;
  check_int "high-water mark" million s.Wheel.max_armed;
  check_int "resident equals armed before any cancel" million
    (Array.fold_left ( + ) 0 s.Wheel.resident);
  Wheel.advance w ~now:(70_000 * tick);
  check_int "all fired" million !fired;
  check_int "none pending" 0 (Wheel.pending w);
  let s = Wheel.stats w in
  check_int "fired accounted" million s.Wheel.fired;
  check_int "nothing resident" 0 (Array.fold_left ( + ) 0 s.Wheel.resident);
  check_bool "cascades actually happened" true (s.Wheel.cascades > 0)

let test_wheel_million_cancel () =
  let w = Wheel.create ~now:0 () in
  let tick = Wheel.default_tick_ns in
  let timers =
    Array.init million (fun i ->
        Wheel.schedule w
          ~deadline:((1 + (i mod 65_536)) * tick)
          (fun () -> Alcotest.fail "cancelled timer fired"))
  in
  Array.iter (fun timer -> Wheel.cancel w timer) timers;
  (* The audit fix: cancellation is visible immediately, not deferred
     to the tombstone's slot visit... *)
  check_int "armed drops to zero at cancel" 0 (Wheel.pending w);
  Alcotest.(check (option int)) "idle wheel reports no expiry" None
    (Wheel.next_expiry w);
  (* ...so advancing an all-tombstone wheel must not grind tick by tick
     through 65k slots (wall-clock guard: this jump is O(1) now). *)
  let t0 = Unix.gettimeofday () in
  Wheel.advance w ~now:(1_000_000_000 * tick);
  let elapsed = Unix.gettimeofday () -. t0 in
  check_bool "tombstone-only advance is immediate" true (elapsed < 0.5);
  let s = Wheel.stats w in
  check_int "cancelled accounted" million s.Wheel.cancelled;
  check_int "none fired" 0 s.Wheel.fired

(* ------------------------------------------------------------------ *)
(* conn-scale workload                                                 *)

let smoke_conns = 2_000
let smoke_events = 6_000

let test_conn_scale_smoke () =
  let r =
    Conn_scale.run ~syn_cookies:true ~conns:smoke_conns ~events:smoke_events ()
  in
  check_int "all connections sustained" smoke_conns r.Conn_scale.r_connection_count;
  check_int "store holds exactly the live set" smoke_conns
    r.Conn_scale.r_store_live;
  check_bool "connections were churned" true (r.Conn_scale.r_closes > 100);
  check_bool "every close reconnected" true
    (r.Conn_scale.r_reconnects = r.Conn_scale.r_closes);
  check_bool "cookie handshakes" true
    (r.Conn_scale.r_cookies_validated >= smoke_conns);
  check_int "no cookie rejects" 0 r.Conn_scale.r_cookies_rejected;
  check_int "no resets" 0 r.Conn_scale.r_rsts;
  check_bool "data flowed on the fast path" true
    (r.Conn_scale.r_fast_hits > r.Conn_scale.r_events / 2);
  check_bool "TIME_WAIT remnants drained at the end" true
    (r.Conn_scale.r_time_wait_live = 0)

let test_conn_scale_classic_listen () =
  (* Same workload through the stateful SYN_RCVD path. *)
  let r =
    Conn_scale.run ~syn_cookies:false ~conns:500 ~events:1_000 ()
  in
  check_int "all connections sustained" 500 r.Conn_scale.r_connection_count;
  check_int "no cookies on the classic path" 0 r.Conn_scale.r_cookies_sent;
  check_int "no resets" 0 r.Conn_scale.r_rsts

let test_conn_scale_deterministic () =
  let snap () =
    (Conn_scale.run ~conns:800 ~events:2_000 ~seed:11 ()).Conn_scale.r_snapshot
  in
  check_string "same seed, bit-identical snapshot" (snap ()) (snap ());
  let other =
    (Conn_scale.run ~conns:800 ~events:2_000 ~seed:12 ()).Conn_scale.r_snapshot
  in
  check_bool "different seed, different churn" true (other <> snap ())

let test_syn_flood_stateless () =
  let f = Conn_scale.syn_flood ~syns:20_000 () in
  check_int "every SYN answered with a cookie" 20_000
    f.Conn_scale.f_cookies_sent;
  check_int "no TCBs allocated" 0 f.Conn_scale.f_tcbs_allocated;
  check_int "no connections" 0 f.Conn_scale.f_connections;
  check_bool "per-SYN allocation stays small" true
    (f.Conn_scale.f_minor_words_per_syn < 256.)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "conn_scale"
    [
      ( "store",
        [
          qt prop_flow_table_matches_model;
          Alcotest.test_case "store growth keeps handles valid" `Quick
            test_store_grows;
        ] );
      ( "time-wait",
        [
          Alcotest.test_case "collision handling" `Quick test_tw_collisions;
          Alcotest.test_case "expiry: lazy + sweep" `Quick test_tw_expiry;
          Alcotest.test_case "refresh" `Quick test_tw_refresh;
        ] );
      ( "wheel-1m",
        [
          Alcotest.test_case "1M timers all fire" `Quick test_wheel_million_fire;
          Alcotest.test_case "1M cancels are O(1) visible" `Quick
            test_wheel_million_cancel;
        ] );
      ( "conn-scale",
        [
          Alcotest.test_case "churn smoke (cookies)" `Quick test_conn_scale_smoke;
          Alcotest.test_case "churn smoke (classic listen)" `Quick
            test_conn_scale_classic_listen;
          Alcotest.test_case "same-seed determinism" `Quick
            test_conn_scale_deterministic;
          Alcotest.test_case "SYN flood allocates no TCBs" `Quick
            test_syn_flood_stateless;
        ] );
    ]
