(* Domain_pool: the multicore fan-out primitive behind the parallel
   experiment harness.  The property under test is the determinism
   contract — [map] returns exactly what [List.map (fun f -> f ()) fs]
   would, in submission order, no matter which domain runs which task
   or how long each takes — plus the error paths: lowest-index
   exception propagation, nested-submit rejection, and shutdown. *)

module Pool = Engine.Domain_pool

let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

(* Data-dependent busy work so tasks finish out of submission order. *)
let burn n =
  let acc = ref 0 in
  for i = 1 to n * 1_000 do
    acc := !acc + (i land 7)
  done;
  ignore (Sys.opaque_identity !acc)

let test_map_ordered () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = 32 in
      let fs =
        List.init n (fun i () ->
            (* Earlier tasks burn longer, so completion order inverts
               submission order when domains run them concurrently. *)
            burn (n - i);
            i * i)
      in
      check_ints "results in submission order" (List.init n (fun i -> i * i))
        (Pool.map pool fs))

let test_map_empty () =
  Pool.with_pool ~jobs:3 (fun pool ->
      check_ints "empty batch" [] (Pool.map pool []))

let test_pool_reuse () =
  (* Several batches through one pool; each must be independent. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      for round = 1 to 5 do
        let fs = List.init 8 (fun i () -> (round * 100) + i) in
        check_ints
          (Printf.sprintf "round %d" round)
          (List.init 8 (fun i -> (round * 100) + i))
          (Pool.map pool fs)
      done)

let test_jobs1_inline () =
  (* jobs = 1 spawns no domains: tasks run inline on the caller, in
     order — observable via shared (domain-local) state. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      check_int "jobs" 1 (Pool.jobs pool);
      let trace = ref [] in
      let fs = List.init 5 (fun i () -> trace := i :: !trace; i) in
      check_ints "results" [ 0; 1; 2; 3; 4 ] (Pool.map pool fs);
      check_ints "executed in submission order" [ 0; 1; 2; 3; 4 ]
        (List.rev !trace))

exception Task_failed of int

let test_exception_lowest_index () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let fs =
        List.init 16 (fun i () ->
            burn (16 - i);
            if i = 11 || i = 3 || i = 7 then raise (Task_failed i);
            i)
      in
      match Pool.map pool fs with
      | _ -> Alcotest.fail "expected Task_failed"
      | exception Task_failed i ->
          check_int "lowest failing index wins" 3 i;
          (* The pool survives a failed batch. *)
          check_ints "next batch runs" [ 7 ]
            (Pool.map pool [ (fun () -> 7) ]))

let test_nested_submit_rejected () =
  Pool.with_pool ~jobs:2 (fun pool ->
      match Pool.map pool [ (fun () -> Pool.map pool [ (fun () -> 0) ]) ] with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_map_after_shutdown () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  match Pool.map pool [ (fun () -> 0) ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_with_pool_shuts_down_on_exception () =
  (* Fun.protect must shut the pool down even when the body raises;
     the raise must come through untranslated. *)
  match Pool.with_pool ~jobs:2 (fun _ -> raise (Task_failed 42)) with
  | _ -> Alcotest.fail "expected Task_failed"
  | exception Task_failed i -> check_int "body exception surfaces" 42 i

let test_create_invalid_jobs () =
  match Pool.create ~jobs:0 () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_map_jobs_matches_sequential () =
  let fs = List.init 20 (fun i () -> burn (i mod 5); (i * 17) mod 23) in
  let sequential = List.map (fun f -> f ()) fs in
  check_ints "map_jobs ~jobs:1" sequential (Pool.map_jobs ~jobs:1 fs);
  check_ints "map_jobs ~jobs:4" sequential (Pool.map_jobs ~jobs:4 fs)

(* The determinism property, under randomized task counts, durations
   and pool widths: parallel map ≡ sequential List.map. *)
let prop_map_is_list_map =
  QCheck.Test.make ~name:"map ≡ List.map under random durations/jobs" ~count:25
    QCheck.(pair (int_bound 3) (small_list (int_bound 40)))
    (fun (extra_jobs, work) ->
      let jobs = 1 + extra_jobs in
      let mk w i () =
        burn w;
        (i * 31) + w
      in
      let fs = List.mapi (fun i w -> mk w i) work in
      Pool.map_jobs ~jobs fs = List.map (fun f -> f ()) fs)

let () =
  Alcotest.run "domain_pool"
    [
      ( "map",
        [
          Alcotest.test_case "submission-order results" `Quick test_map_ordered;
          Alcotest.test_case "empty batch" `Quick test_map_empty;
          Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
          Alcotest.test_case "jobs=1 runs inline in order" `Quick
            test_jobs1_inline;
          Alcotest.test_case "map_jobs matches sequential" `Quick
            test_map_jobs_matches_sequential;
          QCheck_alcotest.to_alcotest prop_map_is_list_map;
        ] );
      ( "errors",
        [
          Alcotest.test_case "lowest-index exception propagates" `Quick
            test_exception_lowest_index;
          Alcotest.test_case "nested submit rejected" `Quick
            test_nested_submit_rejected;
          Alcotest.test_case "map after shutdown rejected" `Quick
            test_map_after_shutdown;
          Alcotest.test_case "with_pool cleans up on exception" `Quick
            test_with_pool_shuts_down_on_exception;
          Alcotest.test_case "jobs < 1 rejected" `Quick test_create_invalid_jobs;
        ] );
    ]
