(* The fault-injection subsystem's contract, end to end:

   - the plan language round-trips ([parse (to_string s) = s]) and
     rejects malformed input with errors, not exceptions;
   - a chaos leg is fully determined by [(spec, seed)]: the same seed
     reproduces the full-precision metric snapshot byte-for-byte, with
     faults armed, for both workloads;
   - fanning legs over a domain pool (jobs=4) is bit-identical to the
     sequential path (jobs=1);
   - the end-of-run invariant audit passes across a wide seed sweep —
     no seed's particular interleaving of drops, flaps, stalls,
     exhaustions and handler crashes leaks an mbuf, loses a frame from
     the conservation ledger, or escapes containment;
   - a mempool driven to exhaustion and back never raises: counted
     failures while empty, full service after recovery. *)

module FP = Ix_faults.Fault_plan
module Chaos = Harness.Chaos
module Mempool = Ixmem.Mempool
module Mbuf = Ixmem.Mbuf

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---------------- Plan syntax ---------------- *)

let test_parse_named () =
  check_bool "none" true (FP.parse "none" = Ok FP.none);
  check_bool "empty = none" true (FP.parse "" = Ok FP.none);
  check_bool "default" true (FP.parse "default" = Ok FP.default);
  check_string "none prints as none" "none" (FP.to_string FP.none)

let test_default_roundtrip () =
  match FP.parse (FP.to_string FP.default) with
  | Ok spec -> check_bool "default round-trips" true (spec = FP.default)
  | Error e -> Alcotest.failf "default round-trip failed: %s" e

let test_parse_durations () =
  match FP.parse "flap=4ms/300us,doorbell=5us,reorder_delay=50000" with
  | Error e -> Alcotest.failf "duration parse failed: %s" e
  | Ok spec ->
      check_int "ms period" 4_000_000 spec.FP.flap_period_ns;
      check_int "us window" 300_000 spec.FP.flap_down_ns;
      check_int "us duration" 5_000 spec.FP.doorbell_delay_ns;
      check_int "bare ns" 50_000 spec.FP.reorder_delay_ns

let expect_error what s =
  match FP.parse s with
  | Ok _ -> Alcotest.failf "%s: %S parsed but should be rejected" what s
  | Error _ -> ()

let test_parse_errors () =
  expect_error "unknown key" "explode=0.5";
  expect_error "rate above 1" "drop=1.5";
  expect_error "negative rate" "drop=-0.1";
  expect_error "rate not a float" "drop=often";
  expect_error "missing value" "drop";
  expect_error "window without slash" "flap=4ms";
  expect_error "window >= period" "flap=1ms/1ms";
  expect_error "zero period" "stall=0ns/0ns";
  expect_error "bad duration unit" "doorbell=5furlongs"

(* Specs drawn from short decimal rates and exact integer durations:
   [to_string] prints rates with %g, and a double parsed from a short
   decimal re-prints to that same decimal, so round-trips are exact. *)
let spec_gen =
  let open QCheck.Gen in
  let rate = map (fun k -> float_of_int k /. 1000.) (int_bound 999) in
  let dur = map (fun k -> 1 + k) (int_bound 10_000_000) in
  let window =
    oneof
      [
        return (0, 0);
        (int_range 2 10_000_000 >>= fun p ->
         int_range 1 (p - 1) >>= fun w -> return (p, w));
      ]
  in
  rate >>= fun drop_rate ->
  rate >>= fun corrupt_rate ->
  rate >>= fun truncate_rate ->
  rate >>= fun duplicate_rate ->
  rate >>= fun reorder_rate ->
  dur >>= fun reorder_delay_ns ->
  window >>= fun (flap_period_ns, flap_down_ns) ->
  window >>= fun (stall_period_ns, stall_ns) ->
  window >>= fun (exhaust_period_ns, exhaust_ns) ->
  dur >>= fun doorbell_delay_ns ->
  rate >>= fun app_crash_rate ->
  rate >>= fun hostile_rst_rate ->
  rate >>= fun hostile_syn_rate ->
  rate >>= fun hostile_olddup_rate ->
  rate >>= fun hostile_ack_rate ->
  return
    {
      FP.drop_rate;
      corrupt_rate;
      truncate_rate;
      duplicate_rate;
      reorder_rate;
      reorder_delay_ns;
      flap_period_ns;
      flap_down_ns;
      stall_period_ns;
      stall_ns;
      exhaust_period_ns;
      exhaust_ns;
      doorbell_delay_ns;
      app_crash_rate;
      hostile_rst_rate;
      hostile_syn_rate;
      hostile_olddup_rate;
      hostile_ack_rate;
    }

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"parse (to_string spec) = spec" ~count:200
    (QCheck.make ~print:FP.to_string spec_gen)
    (fun spec ->
      match FP.parse (FP.to_string spec) with
      | Ok spec' -> spec' = spec
      | Error e -> QCheck.Test.fail_reportf "did not re-parse: %s" e)

(* ---------------- Determinism with faults armed ---------------- *)

(* Short soaks: these tests are about byte equality and audit outcomes,
   not soak coverage (bench/main.exe chaos runs the long soak). *)

let test_echo_leg_deterministic () =
  let a = Chaos.echo_leg ~seed:5 ~soak_ms:3 () in
  let b = Chaos.echo_leg ~seed:5 ~soak_ms:3 () in
  check_string "echo: same seed, byte-identical snapshot" a.Chaos.snapshot
    b.Chaos.snapshot;
  let c = Chaos.echo_leg ~seed:6 ~soak_ms:3 () in
  check_bool "echo: different seed, different run" true
    (a.Chaos.snapshot <> c.Chaos.snapshot)

let test_memcached_leg_deterministic () =
  let a = Chaos.memcached_leg ~seed:5 ~soak_ms:3 () in
  let b = Chaos.memcached_leg ~seed:5 ~soak_ms:3 () in
  check_string "memcached: same seed, byte-identical snapshot"
    a.Chaos.snapshot b.Chaos.snapshot

let test_jobs_bit_identical () =
  let snaps legs = List.map (fun l -> l.Chaos.snapshot) legs in
  let seq = Chaos.run ~jobs:1 ~seed:11 ~soak_ms:3 ~quiet:true () in
  let par = Chaos.run ~jobs:4 ~seed:11 ~soak_ms:3 ~quiet:true () in
  check_bool "jobs=4 bit-identical to jobs=1" true (snaps seq = snaps par)

let test_faults_actually_fire () =
  (* The default cocktail on a soak this short must still inject
     something on the wire — otherwise the determinism checks above
     would be vacuous. *)
  let leg = Chaos.echo_leg ~seed:5 ~soak_ms:3 () in
  check_bool "wire losses occurred" true (leg.Chaos.wire_losses > 0);
  check_bool "messages still flowed" true (leg.Chaos.messages > 0)

(* ---------------- Zero-copy wire-path equivalence ---------------- *)

(* The refcounted borrow path (NICs transmit a view over the sender's
   mbuf) must be observationally invisible: pinning every NIC to the
   copy path ([tx_snapshot]) has to reproduce the borrow-path run's
   full-precision metric snapshot byte-for-byte — same seed, same
   plan, faults armed, including corrupt/truncate taps that force the
   borrow path through its COW branch. *)

let leg_pair ~seed ~spec =
  let borrow = Chaos.echo_leg ~seed ~spec ~soak_ms:3 () in
  let copy = Chaos.echo_leg ~seed ~spec ~soak_ms:3 ~tx_snapshot:true () in
  (borrow, copy)

let prop_zero_copy_equivalence =
  let gen =
    QCheck.Gen.(
      int_bound 9999 >>= fun seed ->
      spec_gen >>= fun spec -> return (seed, spec))
  in
  let print (seed, spec) =
    Printf.sprintf "seed=%d spec=%s" seed (FP.to_string spec)
  in
  QCheck.Test.make ~name:"copy path = borrow path, faults armed" ~count:10
    (QCheck.make ~print gen)
    (fun (seed, spec) ->
      let borrow, copy = leg_pair ~seed ~spec in
      if borrow.Chaos.snapshot <> copy.Chaos.snapshot then
        QCheck.Test.fail_reportf
          "copy-path snapshot diverged from borrow path (seed %d)" seed
      else true)

let test_zero_copy_cow_fires () =
  (* Guard against vacuity: under the default cocktail the soak must
     actually mangle frames in flight, so the equivalence above covers
     the COW branch and not just clean forwarding. *)
  let borrow, copy = leg_pair ~seed:7 ~spec:FP.default in
  check_bool "faults fired" true (borrow.Chaos.wire_losses > 0);
  check_string "snapshots identical under the default cocktail"
    borrow.Chaos.snapshot copy.Chaos.snapshot

let test_zero_copy_jobs4 () =
  (* The borrow path holds refcounts across link-propagation events;
     fan copy and borrow legs over 4 domains to show the equivalence
     (and each leg's determinism) survives domain-parallel execution. *)
  let seeds = [ 3; 17; 23 ] in
  let thunks =
    List.concat_map
      (fun seed ->
        [
          (fun () -> (Chaos.echo_leg ~seed ~soak_ms:3 ()).Chaos.snapshot);
          (fun () ->
            (Chaos.echo_leg ~seed ~soak_ms:3 ~tx_snapshot:true ())
              .Chaos.snapshot);
        ])
      seeds
  in
  let seq = Engine.Domain_pool.map_jobs ~jobs:1 thunks in
  let par = Engine.Domain_pool.map_jobs ~jobs:4 thunks in
  check_bool "jobs=4 bit-identical to jobs=1" true (seq = par);
  let rec pairs = function
    | borrow :: copy :: rest ->
        check_string "copy = borrow under jobs=4" borrow copy;
        pairs rest
    | _ -> ()
  in
  pairs par

(* ---------------- The audit, across seeds ---------------- *)

let test_audit_seed_sweep () =
  (* 25 seeds x (echo + memcached) = 50 audited legs.  Every one must
     drain clean: conservation ledgers balanced, no leaked mbufs, no
     surviving flows, every crash contained, every close accounted. *)
  for seed = 0 to 24 do
    let check (leg : Chaos.leg) =
      if leg.Chaos.audit_failures <> [] then
        Alcotest.failf "seed %d, %s:\n  %s" seed leg.Chaos.leg_name
          (String.concat "\n  " leg.Chaos.audit_failures)
    in
    check (Chaos.echo_leg ~seed ~soak_ms:3 ());
    check (Chaos.memcached_leg ~seed ~soak_ms:3 ())
  done

(* ---------------- Mempool exhaustion regression ---------------- *)

let test_mempool_empty_and_back () =
  (* Drive a pool to capacity exhaustion and back: while empty, alloc
     returns None and counts a failure — never raises — and after the
     mbufs come back the pool serves at full capacity again. *)
  let pool = Mempool.create ~capacity:64 ~name:"regress" () in
  let live = ref [] in
  for _ = 1 to 64 do
    match Mempool.alloc pool with
    | Some m -> live := m :: !live
    | None -> Alcotest.fail "pool exhausted before capacity"
  done;
  check_int "all live" 64 (Mempool.live_count pool);
  let failures_before = Mempool.stat_failures pool in
  for _ = 1 to 10 do
    match Mempool.alloc pool with
    | None -> ()
    | Some _ -> Alcotest.fail "alloc succeeded past capacity"
  done;
  check_int "denials counted" (failures_before + 10)
    (Mempool.stat_failures pool);
  List.iter Mbuf.decref !live;
  live := [];
  check_int "all returned" 0 (Mempool.live_count pool);
  (* Recovery: the full complement allocates again. *)
  for _ = 1 to 64 do
    match Mempool.alloc pool with
    | Some m -> live := m :: !live
    | None -> Alcotest.fail "pool did not recover after refill"
  done;
  List.iter Mbuf.decref !live

let test_mempool_gate_never_raises () =
  (* The exhaustion-window fault path: a closed gate behaves exactly
     like an empty pool (counted failure, None), and reopening restores
     service with nothing leaked. *)
  let pool = Mempool.create ~capacity:64 ~name:"gated" () in
  let open_gate = ref true in
  Mempool.set_alloc_gate pool (Some (fun () -> !open_gate));
  (match Mempool.alloc pool with
  | Some m -> Mbuf.decref m
  | None -> Alcotest.fail "gate open but alloc failed");
  open_gate := false;
  let failures_before = Mempool.stat_failures pool in
  for _ = 1 to 5 do
    match Mempool.alloc pool with
    | None -> ()
    | Some _ -> Alcotest.fail "alloc succeeded through a closed gate"
  done;
  check_int "gated denials counted" (failures_before + 5)
    (Mempool.stat_failures pool);
  open_gate := true;
  (match Mempool.alloc pool with
  | Some m -> Mbuf.decref m
  | None -> Alcotest.fail "pool did not recover after the gate reopened");
  Mempool.set_alloc_gate pool None;
  check_int "nothing leaked" 0 (Mempool.live_count pool)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "faults"
    [
      ( "plan-syntax",
        [
          Alcotest.test_case "named plans" `Quick test_parse_named;
          Alcotest.test_case "default round-trips" `Quick test_default_roundtrip;
          Alcotest.test_case "duration units" `Quick test_parse_durations;
          Alcotest.test_case "malformed plans rejected" `Quick test_parse_errors;
          qt prop_spec_roundtrip;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "echo leg same-seed identical" `Quick
            test_echo_leg_deterministic;
          Alcotest.test_case "memcached leg same-seed identical" `Quick
            test_memcached_leg_deterministic;
          Alcotest.test_case "jobs=1 vs jobs=4 identical" `Quick
            test_jobs_bit_identical;
          Alcotest.test_case "faults actually fire" `Quick
            test_faults_actually_fire;
        ] );
      ( "zero-copy",
        [
          qt prop_zero_copy_equivalence;
          Alcotest.test_case "COW branch is exercised" `Quick
            test_zero_copy_cow_fires;
          Alcotest.test_case "copy = borrow at jobs=4" `Quick
            test_zero_copy_jobs4;
        ] );
      ( "audit",
        [ Alcotest.test_case "50-leg seed sweep drains clean" `Quick test_audit_seed_sweep ] );
      ( "mempool",
        [
          Alcotest.test_case "empty and back, never raises" `Quick
            test_mempool_empty_and_back;
          Alcotest.test_case "alloc gate, never raises" `Quick
            test_mempool_gate_never_raises;
        ] );
    ]
